package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMergeMetrics(t *testing.T) {
	dst := MetricsJSON{
		UptimeSeconds: 10,
		Gauges:        map[string]float64{"g": 1},
		Counters:      map[string]uint64{"c": 5},
		Histograms: map[string]HistogramJSON{
			"h": {Count: 2, SumSeconds: 0.5, Buckets: []HistBucket{{LE: 0.1, Count: 1}, {LE: 1, Count: 2}}},
		},
	}
	src := MetricsJSON{
		UptimeSeconds: 30,
		Gauges:        map[string]float64{"g": 2, "g2": 7},
		Counters:      map[string]uint64{"c": 3, "c2": 1},
		Histograms: map[string]HistogramJSON{
			"h": {Count: 4, SumSeconds: 1.5, Buckets: []HistBucket{{LE: 0.1, Count: 3}, {LE: 1, Count: 4}}},
		},
	}
	MergeMetrics(&dst, src)
	if dst.UptimeSeconds != 30 {
		t.Errorf("uptime = %g, want max 30", dst.UptimeSeconds)
	}
	if dst.Gauges["g"] != 3 || dst.Gauges["g2"] != 7 {
		t.Errorf("gauges = %v", dst.Gauges)
	}
	if dst.Counters["c"] != 8 || dst.Counters["c2"] != 1 {
		t.Errorf("counters = %v", dst.Counters)
	}
	h := dst.Histograms["h"]
	if h.Count != 6 || h.SumSeconds != 2 {
		t.Errorf("histogram count/sum = %d/%g, want 6/2", h.Count, h.SumSeconds)
	}
	want := []HistBucket{{LE: 0.1, Count: 4}, {LE: 1, Count: 6}}
	if len(h.Buckets) != 2 || h.Buckets[0] != want[0] || h.Buckets[1] != want[1] {
		t.Errorf("buckets = %v, want %v", h.Buckets, want)
	}
}

func TestFleetMetricsAggregatesMembers(t *testing.T) {
	// Two synthetic members serving MetricsJSON, plus an unreachable
	// third registered but then torn down.
	mkMember := func(sims uint64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/metrics" || r.URL.Query().Get("format") != "json" {
				http.NotFound(w, r)
				return
			}
			json.NewEncoder(w).Encode(MetricsJSON{
				UptimeSeconds: 1,
				Counters:      map[string]uint64{"esteem_worker_sims_computed_total": sims},
				Gauges:        map[string]float64{"esteem_worker_held_leases": 1},
				Histograms: map[string]HistogramJSON{
					"esteem_wait_seconds": {Count: 1, SumSeconds: 0.25, Buckets: []HistBucket{{LE: 1, Count: 1}}},
				},
			})
		}))
	}
	m1, m2 := mkMember(3), mkMember(4)
	defer m1.Close()
	defer m2.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	// The coordinator's Self must also answer /metrics: reuse m1 as
	// self so the fleet is {m1(self), m2, dead}.
	c, err := NewCoordinator(CoordinatorConfig{Self: m1.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.heartbeat(m2.URL, nil, nil)
	c.heartbeat(deadURL, nil, nil)

	view := c.FleetMetrics(context.Background())
	if len(view.Members) != 3 {
		t.Fatalf("members = %d, want 3", len(view.Members))
	}
	var gotErr bool
	for _, m := range view.Members {
		if m.URL == deadURL {
			gotErr = m.Error != "" && m.Metrics == nil
		}
	}
	if !gotErr {
		t.Errorf("dead member not reported as error: %+v", view.Members)
	}
	if got := view.Fleet.Counters["esteem_worker_sims_computed_total"]; got != 7 {
		t.Errorf("fleet sims = %d, want 7", got)
	}
	if got := view.Fleet.Gauges["esteem_worker_held_leases"]; got != 2 {
		t.Errorf("fleet held leases = %g, want 2", got)
	}
	if h := view.Fleet.Histograms["esteem_wait_seconds"]; h.Count != 2 || h.SumSeconds != 0.5 {
		t.Errorf("fleet histogram = %+v", h)
	}

	// Text exposition: unlabeled fleet aggregate (awk-compatible) plus
	// one labeled series per member.
	var buf bytes.Buffer
	writeFleetText(&buf, view)
	text := buf.String()
	for _, want := range []string{
		"esteem_fleet_members 3\n",
		"esteem_fleet_members_reachable 2\n",
		"esteem_worker_sims_computed_total 7\n",
		`esteem_worker_sims_computed_total{node="` + m2.URL + `"} 4` + "\n",
		"esteem_wait_seconds_count 2\n",
		`esteem_wait_seconds_bucket{le="1"} 2` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet text missing %q:\n%s", want, text)
		}
	}
}
