package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestKnownVector(t *testing.T) {
	// Pin the splitmix64 reference output for seed 0 so accidental
	// algorithm changes are caught: these are the published test
	// vectors for splitmix64 (first outputs after state 0).
	r := New(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent must not produce equal next values in lockstep.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	p := 0.25
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(15)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exponential(42)
	}
	mean := sum / n
	if math.Abs(mean-42) > 1 {
		t.Fatalf("exponential mean = %v, want ~42", mean)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(19)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must be the most frequent and clearly heavier than rank 50.
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	for i := 1; i < 100; i++ {
		if counts[i] == 0 {
			t.Fatalf("zipf never produced rank %d in %d draws", i, n)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(21)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("s=0 zipf rank %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nRange(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw) + 1
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 4096, 0.8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Next()
	}
	_ = sink
}

func TestSeedResets(t *testing.T) {
	r := New(5)
	first := r.Uint64()
	r.Uint64()
	r.Seed(5)
	if r.Uint64() != first {
		t.Fatal("Seed did not reset the stream")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.24 || frac > 0.26 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestZipfN(t *testing.T) {
	z := NewZipf(New(1), 17, 0.5)
	if z.N() != 17 {
		t.Fatalf("N = %d", z.N())
	}
}
