package castore

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func ckptMeta(seq int, minM, maxM uint64) CheckpointMeta {
	return CheckpointMeta{Seq: seq, Frontier: uint64(seq) * 100_000, MinMeasured: minM, MaxMeasured: maxM}
}

// TestCheckpointBaseKeyIgnoresHorizon is the defining property of the
// base key: two configurations differing only in MeasureInstr share a
// checkpoint lineage, while any other difference separates them.
func TestCheckpointBaseKeyIgnoresHorizon(t *testing.T) {
	cfg := sim.DefaultConfig(1)
	wl := []string{"gcc"}
	short, err := CheckpointBaseKey(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	long := cfg
	long.MeasureInstr = cfg.MeasureInstr * 3
	lk, err := CheckpointBaseKey(long, wl)
	if err != nil {
		t.Fatal(err)
	}
	if short != lk {
		t.Fatal("base key depends on MeasureInstr")
	}
	other := cfg
	other.Seed++
	ok, err := CheckpointBaseKey(other, wl)
	if err != nil {
		t.Fatal(err)
	}
	if ok == short {
		t.Fatal("base key ignores the seed")
	}
	ak, err := Key(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if ak == short {
		t.Fatal("checkpoint base key collides with the artifact key")
	}
}

// TestCheckpointPutBest exercises the round trip, the strict horizon
// rule, deepest-wins selection and the stats counters, over both a
// disk-backed and a memory-only store.
func TestCheckpointPutBest(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "disk"
		if dir == "" {
			name = "memory"
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(dir, 4)
			if err != nil {
				t.Fatal(err)
			}
			base := strings.Repeat("ab", 32)
			if err := s.PutCheckpoint(base, ckptMeta(0, 0, 0), []byte("seam")); err != nil {
				t.Fatal(err)
			}
			if err := s.PutCheckpoint(base, ckptMeta(4, 190_000, 210_000), []byte("deep")); err != nil {
				t.Fatal(err)
			}
			if err := s.PutCheckpoint(base, ckptMeta(2, 90_000, 110_000), []byte("mid")); err != nil {
				t.Fatal(err)
			}

			// Deepest usable wins.
			meta, data, ok, err := s.BestCheckpoint(base, 500_000)
			if err != nil || !ok {
				t.Fatalf("BestCheckpoint: ok=%v err=%v", ok, err)
			}
			if meta.Seq != 4 || !bytes.Equal(data, []byte("deep")) {
				t.Fatalf("got seq %d data %q, want the deepest checkpoint", meta.Seq, data)
			}
			// MaxMeasured == horizon is NOT usable (strictly-below rule):
			// the deep checkpoint is skipped for the mid one.
			meta, data, ok, err = s.BestCheckpoint(base, 210_000)
			if err != nil || !ok {
				t.Fatalf("BestCheckpoint: ok=%v err=%v", ok, err)
			}
			if meta.Seq != 2 || !bytes.Equal(data, []byte("mid")) {
				t.Fatalf("got seq %d, want 2 (strict horizon rule)", meta.Seq)
			}
			// A horizon nothing satisfies... the seam (MaxMeasured 0) is
			// always usable for any positive horizon.
			meta, _, ok, err = s.BestCheckpoint(base, 1)
			if err != nil || !ok || meta.Seq != 0 {
				t.Fatalf("seam lookup: seq=%d ok=%v err=%v", meta.Seq, ok, err)
			}
			// An unknown lineage is a miss.
			_, _, ok, err = s.BestCheckpoint(strings.Repeat("cd", 32), 500_000)
			if err != nil || ok {
				t.Fatalf("unknown lineage: ok=%v err=%v", ok, err)
			}

			st := s.Stats()
			if st.PrefixHits != 3 || st.PrefixMisses != 1 {
				t.Fatalf("stats: %d hits %d misses, want 3/1", st.PrefixHits, st.PrefixMisses)
			}
			if want := uint64(190_000 + 90_000 + 0); st.PrefixSavedInstr != want {
				t.Fatalf("saved instructions %d, want %d", st.PrefixSavedInstr, want)
			}

			// Re-putting a sequence replaces it, never duplicates.
			if err := s.PutCheckpoint(base, ckptMeta(2, 90_000, 110_000), []byte("mid2")); err != nil {
				t.Fatal(err)
			}
			entries, err := s.Checkpoints(base)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 3 {
				t.Fatalf("%d index entries after replace, want 3", len(entries))
			}
			_, data, ok, _ = s.BestCheckpoint(base, 150_000)
			if !ok || !bytes.Equal(data, []byte("mid2")) {
				t.Fatalf("replaced blob not served: %q", data)
			}

			// Invalid base keys are rejected before touching anything.
			if err := s.PutCheckpoint("../escape", ckptMeta(0, 0, 0), nil); err == nil {
				t.Fatal("PutCheckpoint accepted an invalid key")
			}
			if _, err := s.Checkpoints("nope"); err == nil {
				t.Fatal("Checkpoints accepted an invalid key")
			}
		})
	}
}

// TestCheckpointPersistsAcrossOpen: a disk-backed lineage written by
// one store is visible to a fresh store over the same directory
// (service restarts keep their resumable prefixes).
func TestCheckpointPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := strings.Repeat("ef", 32)
	if err := s1.PutCheckpoint(base, ckptMeta(3, 140_000, 160_000), []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	meta, data, ok, err := s2.BestCheckpoint(base, 500_000)
	if err != nil || !ok {
		t.Fatalf("reopened store: ok=%v err=%v", ok, err)
	}
	if meta.Seq != 3 || !bytes.Equal(data, []byte("persisted")) {
		t.Fatalf("reopened store served seq %d data %q", meta.Seq, data)
	}
}
