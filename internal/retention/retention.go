// Package retention models the eDRAM retention period and its
// dependence on temperature and process variation.
//
// The paper's Section 6.1 sets the stage: Barth et al. report a 40 µs
// retention period at 105 °C for their SOI eDRAM macro, and since
// "retention periods are exponentially dependent on temperature", the
// paper assumes a 60 °C operating point and presents most results at
// 50 µs (re-testing at 40 µs in Section 7.3). This package encodes
// exactly that model — an exponential fit through the paper's two
// (temperature, retention) points:
//
//	T_ret(temp) = T_ret(temp0) * exp(-k * (temp - temp0))
//
// so experiments can sweep operating temperature instead of picking
// retention values by hand. It also provides the process-variation
// helper used by the variation ablation: per-line retention is
// log-normally distributed around the nominal, and a refresh period
// must honour the worst line it covers.
package retention

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// The paper's calibration points.
const (
	// HotTempC / HotRetentionMicros: Barth et al. measurement.
	HotTempC           = 105.0
	HotRetentionMicros = 40.0
	// NominalTempC / NominalRetentionMicros: the paper's assumed
	// operating point.
	NominalTempC           = 60.0
	NominalRetentionMicros = 50.0
)

// decayPerC is k in the exponential model, fitted through the two
// points above: k = ln(50/40) / (105 - 60).
var decayPerC = math.Log(NominalRetentionMicros/HotRetentionMicros) / (HotTempC - NominalTempC)

// Micros returns the retention period in microseconds at the given
// junction temperature, per the paper's exponential model.
func Micros(tempC float64) float64 {
	return NominalRetentionMicros * math.Exp(-decayPerC*(tempC-NominalTempC))
}

// TempForMicros inverts Micros: the temperature at which the
// retention period equals the given value.
func TempForMicros(retentionMicros float64) (float64, error) {
	if retentionMicros <= 0 {
		return 0, fmt.Errorf("retention: non-positive retention %v", retentionMicros)
	}
	return NominalTempC - math.Log(retentionMicros/NominalRetentionMicros)/decayPerC, nil
}

// Variation describes log-normal per-cell retention variation, the
// standard model for retention-time process variation.
type Variation struct {
	// Sigma is the standard deviation of ln(retention) around the
	// nominal. Typical modelled values are 0.1–0.3.
	Sigma float64
}

// Validate checks the parameters.
func (v Variation) Validate() error {
	if v.Sigma < 0 {
		return fmt.Errorf("retention: negative sigma %v", v.Sigma)
	}
	return nil
}

// Sample draws one line's retention multiplier (relative to nominal)
// using rng. A multiplier of 1 means exactly nominal.
func (v Variation) Sample(rng *xrand.RNG) float64 {
	if v.Sigma == 0 {
		return 1
	}
	// Box–Muller from two uniforms; one output suffices.
	u1 := rng.Float64()
	if u1 == 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := rng.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(v.Sigma * z)
}

// WorstCaseMultiplier returns the expected minimum retention
// multiplier across a population of n lines: the refresh period of a
// cache without per-line tracking must honour its weakest line. It
// uses the standard extreme-value approximation for the minimum of n
// log-normal samples, quantile at rank 1/(n+1).
func (v Variation) WorstCaseMultiplier(n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("retention: population must be positive")
	}
	if v.Sigma == 0 {
		return 1, nil
	}
	p := 1.0 / float64(n+1)
	return math.Exp(v.Sigma * normQuantile(p)), nil
}

// DeratedMicros returns the refresh period a cache of n lines must
// use at the given temperature under process variation: the nominal
// retention derated to its expected weakest line.
func DeratedMicros(tempC float64, v Variation, n int) (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	m, err := v.WorstCaseMultiplier(n)
	if err != nil {
		return 0, err
	}
	return Micros(tempC) * m, nil
}

// normQuantile is the standard normal quantile function
// (Acklam/Wichura-style rational approximation; |error| < 1.15e-9).
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("retention: quantile of %v", p))
	}
	// Coefficients for the central and tail regions.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
