package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ParseRun decodes a run artifact previously written with EncodeRun
// (or any canonical-JSON RunArtifact). It is the read path of the
// content-addressed artifact store: callers fetch stored bytes by
// hash and decode them here. Unknown fields are rejected — an
// artifact written by a newer schema must fail loudly, not decode to
// a silently truncated record — and the schema version is gated.
func ParseRun(data []byte) (RunArtifact, error) {
	var a RunArtifact
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return RunArtifact{}, fmt.Errorf("obs: decoding run artifact: %w", err)
	}
	// Trailing garbage after the document means a torn or concatenated
	// file; reject it rather than return half an artifact.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return RunArtifact{}, fmt.Errorf("obs: trailing data after run artifact")
	}
	if a.SchemaVersion != SchemaVersion {
		return RunArtifact{}, fmt.Errorf("obs: run artifact schema %d, want %d", a.SchemaVersion, SchemaVersion)
	}
	return a, nil
}

// DecodeRun reads and decodes one run artifact from r.
func DecodeRun(r io.Reader) (RunArtifact, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return RunArtifact{}, fmt.Errorf("obs: reading run artifact: %w", err)
	}
	return ParseRun(data)
}

// ReadRunFile loads the run artifact at path.
func ReadRunFile(path string) (RunArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RunArtifact{}, err
	}
	a, err := ParseRun(data)
	if err != nil {
		return RunArtifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
