package cpu

import (
	"testing"

	"repro/internal/trace"
)

func newCore(t testing.TB) *Core {
	t.Helper()
	p, ok := trace.ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	return New(0, trace.MustNewGenerator(p, 1))
}

func TestNextRefAdvancesClockAndInstructions(t *testing.T) {
	c := newCore(t)
	r := c.NextRef()
	want := uint64(r.Gap) + 1
	if c.Instructions() != want {
		t.Fatalf("instructions = %d, want %d", c.Instructions(), want)
	}
	if c.Clock() != want {
		t.Fatalf("clock = %d, want %d (base CPI 1)", c.Clock(), want)
	}
}

func TestStallAccounting(t *testing.T) {
	c := newCore(t)
	c.Stall(12, StallL2Hit)
	c.Stall(220, StallMemory)
	c.Stall(30, StallRefresh)
	c.Stall(0, StallMemory) // no-op
	if c.Clock() != 262 {
		t.Fatalf("clock = %d, want 262", c.Clock())
	}
	if c.StallCycles(StallL2Hit) != 12 || c.StallCycles(StallMemory) != 220 || c.StallCycles(StallRefresh) != 30 {
		t.Fatal("stall breakdown wrong")
	}
	if c.Instructions() != 0 {
		t.Fatal("stalls must not retire instructions")
	}
}

func TestStallKindString(t *testing.T) {
	if StallL2Hit.String() != "l2-hit" || StallRefresh.String() != "refresh" || StallMemory.String() != "memory" {
		t.Fatal("stall names wrong")
	}
	if StallKind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestMeasurementWindow(t *testing.T) {
	c := newCore(t)
	// Warmup: run some refs before measuring.
	for i := 0; i < 100; i++ {
		c.NextRef()
	}
	warmClock := c.Clock()
	c.BeginMeasurement(1000)
	if c.MeasurementDone() {
		t.Fatal("measurement done immediately")
	}
	for !c.MeasurementDone() {
		c.NextRef()
		c.Stall(5, StallL2Hit)
	}
	mi := c.MeasuredInstructions()
	if mi < 1000 {
		t.Fatalf("measured instructions = %d, want >= 1000", mi)
	}
	// Budget can overshoot by at most one ref's gap.
	if mi > 1100 {
		t.Fatalf("measured instructions = %d, overshot far beyond budget", mi)
	}
	if c.MeasuredCycles() == 0 || c.MeasuredCycles() < mi {
		t.Fatalf("measured cycles = %d implausible (stalls added)", c.MeasuredCycles())
	}
	if c.Clock() <= warmClock {
		t.Fatal("clock did not advance during measurement")
	}
}

func TestIPCExcludesPostWindowExecution(t *testing.T) {
	c := newCore(t)
	c.BeginMeasurement(500)
	for !c.MeasurementDone() {
		c.NextRef()
	}
	ipcAtEnd := c.IPC()
	// Keep running with heavy stalls: IPC must not change.
	for i := 0; i < 200; i++ {
		c.NextRef()
		c.Stall(1000, StallMemory)
	}
	if c.IPC() != ipcAtEnd {
		t.Fatalf("IPC changed after window closed: %v vs %v", c.IPC(), ipcAtEnd)
	}
}

func TestIPCWithNoStallsIsOne(t *testing.T) {
	c := newCore(t)
	c.BeginMeasurement(1000)
	for !c.MeasurementDone() {
		c.NextRef()
	}
	if ipc := c.IPC(); ipc != 1 {
		t.Fatalf("stall-free IPC = %v, want exactly 1 (base CPI 1)", ipc)
	}
}

func TestIPCWithStalls(t *testing.T) {
	c := newCore(t)
	c.BeginMeasurement(1000)
	for !c.MeasurementDone() {
		c.NextRef()
		c.Stall(10, StallMemory)
	}
	if ipc := c.IPC(); ipc >= 1 || ipc <= 0 {
		t.Fatalf("stalled IPC = %v, want in (0,1)", ipc)
	}
}

func TestIPCZeroBeforeMeasurement(t *testing.T) {
	c := newCore(t)
	if c.IPC() != 0 {
		t.Fatal("IPC before measurement should be 0")
	}
}

func TestBeginMeasurementPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero budget accepted")
		}
	}()
	newCore(t).BeginMeasurement(0)
}

func TestID(t *testing.T) {
	p, _ := trace.ProfileByName("gcc")
	c := New(3, trace.MustNewGenerator(p, 1))
	if c.ID() != 3 {
		t.Fatal("ID wrong")
	}
}
