// Command esteem-load is the open-loop traffic generator for
// esteem-serve: it synthesizes an invitro-style request schedule
// (stepped RPS ramp plus an optional burst slot, seeded arrival
// jitter, a configurable cache-hot/cold mix), drives the service with
// it, and writes the measured service-level outcome — p50/p99/p999
// latency, throughput, 429/error counts, queue wait and the cache
// hit/miss split scraped from /metrics — as a JSON report consumable
// by esteem-servegate.
//
// Examples:
//
//	esteem-load -server http://127.0.0.1:8344 -out report.json
//	esteem-load -start-rps 10 -step-rps 10 -target-rps 200 -slot 5s -hot 0.5
//	esteem-load -start-rps 50 -step-rps 0 -slot 10s -burst-rps 400 -burst-dur 2s
//
// Arrivals are open-loop: request launch times are precomputed from
// the schedule alone, so a slowing server faces mounting concurrency
// instead of a politely backing-off client. A fixed -seed replays the
// exact same arrival times and hot/cold placement.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/load"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "esteem-load:", err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", "http://127.0.0.1:8344", "esteem-serve base URL")
	startRPS := flag.Float64("start-rps", 10, "ramp starting RPS")
	stepRPS := flag.Float64("step-rps", 10, "ramp RPS increment per slot (0 = single constant-rate slot)")
	targetRPS := flag.Float64("target-rps", 50, "ramp target RPS (last slot)")
	slot := flag.Duration("slot", 3*time.Second, "duration of each constant-rate slot")
	burstRPS := flag.Float64("burst-rps", 0, "append a burst slot at this RPS after the ramp (0 disables)")
	burstDur := flag.Duration("burst-dur", 2*time.Second, "burst slot duration")
	hot := flag.Float64("hot", 0.5, "fraction of requests reusing the cache-hot duplicate spec [0,1]")
	jitter := flag.Float64("jitter", 0.25, "arrival jitter as a fraction of the mean gap [0,1]")
	seed := flag.Int64("seed", 1, "schedule seed (arrival jitter, hot/cold placement, cold spec seeds)")
	out := flag.String("out", "", "write the JSON report to this file (empty = stdout)")
	note := flag.String("note", "", "free-form note stored with the report")
	waitReady := flag.Duration("wait-ready", 30*time.Second, "wait this long for the server's /healthz before starting (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "wait for in-flight requests after the last arrival")
	connRetries := flag.Int("conn-retries", 3, "per-request retries on connection errors (server start/drain)")
	version := cliflags.VersionFlag(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(cliflags.PrintVersion("esteem-load"))
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *waitReady > 0 {
		if err := load.WaitReady(ctx, *server, *waitReady); err != nil {
			return err
		}
	}

	sched := load.Schedule{
		Phases:      load.WithBurst(load.Ramp(*startRPS, *stepRPS, *targetRPS, *slot), *burstRPS, *burstDur),
		HotFraction: *hot,
		Jitter:      *jitter,
		Seed:        *seed,
	}
	rep, err := load.Run(ctx, load.Options{
		Server:       *server,
		Schedule:     sched,
		ConnRetries:  *connRetries,
		DrainTimeout: *drainTimeout,
		Note:         *note,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	printSummary(rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	return nil
}

// printSummary renders the per-phase table humans read on stderr; the
// JSON report is the machine artifact.
func printSummary(rep load.Report) {
	fmt.Fprintf(os.Stderr, "%-10s %9s %6s %6s %5s %5s %9s %9s %9s %8s\n",
		"phase", "offered", "done", "429", "err", "retry", "p50ms", "p99ms", "ach.rps", "hit%")
	row := func(st load.PhaseStats, cache load.CacheStats) {
		fmt.Fprintf(os.Stderr, "%-10s %9.1f %6d %6d %5d %5d %9.2f %9.2f %9.1f %8.1f\n",
			st.Name, st.OfferedRPS, st.Completed, st.Rejected, st.Errors, st.ConnRetries,
			st.Latency.P50, st.Latency.P99, st.AchievedRPS, cache.HitRate*100)
	}
	for _, p := range rep.Phases {
		row(p.PhaseStats, p.Cache)
	}
	row(rep.Overall, rep.Cache)
	fmt.Fprintf(os.Stderr, "queue wait mean %.2f ms, %d sims executed, %d coalesced\n",
		rep.Cache.QueueWaitMeanMs, rep.Cache.SimsExecuted, rep.Cache.Coalesced)
}
