#!/bin/sh
# check.sh — the repository's verification gate. Run before every
# commit (or via `make check`): build, vet, tests, and the race
# detector over the full module (including the service stack:
# internal/castore, internal/serve, internal/cliflags and the
# esteem-serve/esteem-client binaries). The race pass matters since
# the internal/runner engine executes simulations on parallel workers
# and internal/serve drives concurrent jobs through one shared
# content-addressed store; scripts/serve-smoke.sh covers the service
# end to end over a real socket.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./... -count=1 -timeout 10m

echo "== go test -race ./... =="
go test -race ./... -count=1 -timeout 15m

echo "== OK =="
