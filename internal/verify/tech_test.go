package verify

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/tech"
	"repro/internal/xrand"
)

// techFilter restricts the Tech* differential tests to one technology
// backend, so CI can run the lockstep suite as a per-technology matrix:
//
//	go test ./internal/verify -run Tech -tech=sttram
//
// Empty (the default) runs every registered backend.
var techFilter = flag.String("tech", "", "restrict Tech* tests to one technology backend (empty = all)")

// techNames returns the registry names selected by -tech.
func techNames(t *testing.T) []string {
	if *techFilter == "" {
		return tech.List()
	}
	if _, err := tech.New(*techFilter); err != nil {
		t.Fatalf("-tech: %v", err)
	}
	return []string{*techFilter}
}

// techSelected reports whether -tech admits the named backend.
func techSelected(name string) bool {
	return *techFilter == "" || *techFilter == name
}

// techCacheParams applies a technology's wear semantics to a cache
// geometry: the cache layer only sees the endurance knobs, the energy
// factors live in the model.
func techCacheParams(p cache.Params, props tech.Props) cache.Params {
	p.TrackWear = props.TrackWear
	p.WearLevelPeriod = props.WearLevelPeriod
	return p
}

// randomTechActivity extends randomActivity with a write-hit count so
// the asymmetric-energy comparison exercises the read/write split.
func randomTechActivity(rng *xrand.RNG) energy.Activity {
	a := randomActivity(rng)
	a.L2WriteHits = rng.Uint64n(a.L2Hits + 1)
	return a
}

// TestTechCacheLockstep replays the full 9-geometry × 10k-op randomized
// schedule through the production cache and the oracle once per
// technology, with each backend's wear semantics applied. For
// wear-tracked backends CheckState additionally compares every per-frame
// wear counter and the wear-level swap count after every operation.
func TestTechCacheLockstep(t *testing.T) {
	for _, name := range techNames(t) {
		tec, err := tech.New(name)
		if err != nil {
			t.Fatal(err)
		}
		props := tec.Props()
		for gi, g := range Geometries {
			t.Run(fmt.Sprintf("%s/%s", name, g.Name), func(t *testing.T) {
				p := techCacheParams(g, props)
				d, err := NewCacheDiff(p)
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(0x7EC4 + uint64(gi)*251 + uint64(len(name)))
				ops := RandomOps(rng, p, opsPerConfig, 0)
				if err := d.Replay(ops); err != nil {
					t.Fatalf("%s geometry %s diverged: %v", name, p.Name, err)
				}
				if props.TrackWear {
					wear := d.Impl.WearCounters()
					var sum uint64
					for _, w := range wear {
						sum += w
					}
					c := d.Impl.TotalCounters()
					if sum != c.Fills+c.WriteHits {
						t.Fatalf("%s geometry %s: wear sum %d != fills %d + write hits %d",
							name, p.Name, sum, c.Fills, c.WriteHits)
					}
				}
			})
		}
	}
}

// TestTechScrubLockstep runs the full-stack refresh differential for
// every refresh-bearing technology at its scaled scrub period: eDRAM at
// the configured retention, retention-relaxed STT-RAM at 20× (the
// refresh clock doubling as the scrub clock per arxiv 1312.2207).
func TestTechScrubLockstep(t *testing.T) {
	const baseRetention = 10_000
	const phases = 4
	for _, name := range techNames(t) {
		tec, err := tech.New(name)
		if err != nil {
			t.Fatal(err)
		}
		props := tec.Props()
		if !props.HasRefresh {
			continue
		}
		retention := uint64(baseRetention * props.RetentionScale)
		for gi, g := range refreshGeometries {
			t.Run(fmt.Sprintf("%s/%s", name, g.Name), func(t *testing.T) {
				p := techCacheParams(g, props)
				d, err := NewRefreshDiff(p, PolicyValidOnly, phases, retention)
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(0x5C4B + uint64(gi)*173 + uint64(len(name))*7)
				ops := RandomOps(rng, p, 4000, retention)
				if err := d.Replay(ops); err != nil {
					t.Fatalf("%s/%s retention=%d diverged: %v", name, p.Name, retention, err)
				}
			})
		}
	}
}

// TestTechEnergyRecompute compares energy.Model.Eval against the
// oracle's independent Equations (2)–(8) walk for every technology's
// scaled model, over randomized activity including write-hit splits.
func TestTechEnergyRecompute(t *testing.T) {
	rng := xrand.New(0x7EC4E4)
	for _, name := range techNames(t) {
		tec, err := tech.New(name)
		if err != nil {
			t.Fatal(err)
		}
		p := tec.Props()
		for _, size := range []int{2 << 20, 4 << 20, 16 << 20} {
			base, err := newModel(size)
			if err != nil {
				t.Fatal(err)
			}
			m := base.WithTechnology(p.ReadFactor, p.WriteFactor, p.RefreshFactor, p.LeakFactor)
			for i := 0; i < 150; i++ {
				a := randomTechActivity(rng)
				got := oracle.EnergyBreakdown(m, a)
				want := m.Eval(a)
				if !breakdownClose(got.L2Leak, want.L2Leak) ||
					!breakdownClose(got.L2Dyn, want.L2Dyn) ||
					!breakdownClose(got.L2Refresh, want.L2Refresh) ||
					!breakdownClose(got.MMLeak, want.MMLeak) ||
					!breakdownClose(got.MMDyn, want.MMDyn) ||
					!breakdownClose(got.Algo, want.Algo) ||
					!breakdownClose(got.Total(), want.Total()) {
					t.Fatalf("%s size %d MB activity %+v: oracle %+v, model %+v",
						name, size>>20, a, got, want)
				}
			}
		}
	}
}

// techTechniques lists the refresh techniques legal for a backend: a
// technology without a refresh clock cannot run refresh-scheduling
// techniques.
func techTechniques(props tech.Props) []sim.Technique {
	if props.HasRefresh {
		return []sim.Technique{sim.Baseline, sim.Esteem, sim.RPV, sim.SmartRefresh}
	}
	return []sim.Technique{sim.Baseline, sim.Esteem}
}

// TestTechSimEnergyFromIntervals runs a real simulation per technology
// and recomputes the reported energy from the raw per-interval activity
// records through the oracle, independently of the simulator's
// incremental accumulation — including the write-hit counts that the
// asymmetric backends price separately.
func TestTechSimEnergyFromIntervals(t *testing.T) {
	for _, name := range techNames(t) {
		tec, err := tech.New(name)
		if err != nil {
			t.Fatal(err)
		}
		props := tec.Props()
		for _, tq := range techTechniques(props) {
			cfg := shortConfig(tq)
			cfg.Technology = name
			cfg.LogIntervals = true
			res, err := sim.Run(cfg, []string{"gcc"})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, tq, err)
			}
			if len(res.Intervals) == 0 {
				t.Fatalf("%s/%v: no intervals logged", name, tq)
			}
			acts := make([]energy.Activity, 0, len(res.Intervals))
			for _, iv := range res.Intervals {
				acts = append(acts, iv.Activity)
			}
			total := oracle.AccumulateActivity(acts)
			if total.L2Hits != res.Activity.L2Hits ||
				total.L2WriteHits != res.Activity.L2WriteHits ||
				total.L2Misses != res.Activity.L2Misses ||
				total.Refreshes != res.Activity.Refreshes {
				t.Fatalf("%s/%v: interval sums %+v != run activity %+v", name, tq, total, res.Activity)
			}
			if !props.HasRefresh && total.Refreshes != 0 {
				t.Fatalf("%s/%v: non-refresh technology reported %d refreshes", name, tq, total.Refreshes)
			}
			got := oracle.EnergyBreakdown(res.Model, total)
			if !breakdownClose(got.Total(), res.Energy.Total()) {
				t.Fatalf("%s/%v: recomputed energy %v != reported %v", name, tq, got.Total(), res.Energy.Total())
			}
			if props.TrackWear {
				if res.Wear == nil {
					t.Fatalf("%s/%v: wear-tracked run reported no wear stats", name, tq)
				}
				if res.Wear.MaxWear < res.Wear.MinWear || res.Wear.TotalWrites == 0 {
					t.Fatalf("%s/%v: implausible wear stats %+v", name, tq, res.Wear)
				}
				if res.Wear.EnduranceWrites != props.EnduranceWrites {
					t.Fatalf("%s/%v: endurance budget %d != technology's %d",
						name, tq, res.Wear.EnduranceWrites, props.EnduranceWrites)
				}
			} else if res.Wear != nil {
				t.Fatalf("%s/%v: untracked technology reported wear stats %+v", name, tq, res.Wear)
			}
		}
	}
}

// TestTechEdramIdentity asserts routing eDRAM through the technology
// interface is invisible: an empty Technology and an explicit "edram"
// produce canonically byte-identical results for every refresh policy.
func TestTechEdramIdentity(t *testing.T) {
	if !techSelected("edram") {
		t.Skipf("-tech=%s: identity property is eDRAM-specific", *techFilter)
	}
	for _, tq := range []sim.Technique{sim.Baseline, sim.RPV, sim.RPD, sim.Esteem, sim.SmartRefresh} {
		cfg := shortConfig(tq)
		cfg.LogIntervals = true
		implicit, err := sim.Run(cfg, []string{"gcc"})
		if err != nil {
			t.Fatalf("%v implicit: %v", tq, err)
		}
		cfg.Technology = "edram"
		explicit, err := sim.Run(cfg, []string{"gcc"})
		if err != nil {
			t.Fatalf("%v explicit: %v", tq, err)
		}
		bi, err := obs.MarshalCanonical(implicit)
		if err != nil {
			t.Fatal(err)
		}
		be, err := obs.MarshalCanonical(explicit)
		if err != nil {
			t.Fatal(err)
		}
		if string(bi) != string(be) {
			t.Fatalf("%v: empty technology and explicit edram diverge:\n%s\nvs\n%s", tq, bi, be)
		}
	}
}

// TestTechRefreshTechniqueGate asserts that refresh-scheduling
// techniques are rejected at Validate time on technologies without a
// refresh clock, and accepted on those with one.
func TestTechRefreshTechniqueGate(t *testing.T) {
	for _, name := range techNames(t) {
		tec, err := tech.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tq := range []sim.Technique{sim.RPV, sim.RPD, sim.SmartRefresh, sim.ECCExtended} {
			cfg := shortConfig(tq)
			cfg.Technology = name
			err := cfg.Validate()
			if tec.Props().HasRefresh && err != nil {
				t.Fatalf("%s/%v: unexpected validate error: %v", name, tq, err)
			}
			if !tec.Props().HasRefresh && err == nil {
				t.Fatalf("%s/%v: refresh technique accepted on a non-refresh technology", name, tq)
			}
		}
		// The refresh-free techniques are legal everywhere.
		for _, tq := range []sim.Technique{sim.Baseline, sim.NoRefresh, sim.Esteem} {
			cfg := shortConfig(tq)
			cfg.Technology = name
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s/%v: %v", name, tq, err)
			}
		}
	}
}

// TestTechWriteAsymmetryMonotonic is the STT-RAM energy property: with
// total accesses held fixed, shifting hits from writes to reads must
// strictly decrease dynamic (and hence total) energy, because writes
// cost WriteFactor/ReadFactor ≫ 1 times as much.
func TestTechWriteAsymmetryMonotonic(t *testing.T) {
	for _, name := range []string{"sttram", "sttram-relaxed", "reram"} {
		if !techSelected(name) {
			continue
		}
		tec, err := tech.New(name)
		if err != nil {
			t.Fatal(err)
		}
		p := tec.Props()
		base, err := newModel(4 << 20)
		if err != nil {
			t.Fatal(err)
		}
		m := base.WithTechnology(p.ReadFactor, p.WriteFactor, p.RefreshFactor, p.LeakFactor)
		a := energy.Activity{
			Cycles:         1 << 30,
			L2Hits:         1 << 20,
			L2Misses:       1 << 16,
			ActiveFraction: 0.75,
			MMAccesses:     1 << 16,
		}
		var prev float64
		for i, wh := range []uint64{1 << 20, 1 << 18, 1 << 14, 1 << 8, 0} {
			a.L2WriteHits = wh
			total := m.Eval(a).Total()
			if i > 0 && total >= prev {
				t.Fatalf("%s: energy %v at %d write hits is not below %v at the previous (higher) write count",
					name, total, wh, prev)
			}
			prev = total
		}
	}
}

// TestTechWearLevelBounded hammers two resident lines of a single set
// and compares wear spread with and without intra-set wear-levelling:
// the unlevelled cache concentrates every write on two frames while the
// levelled one must keep the max/min gap within a few levelling periods.
func TestTechWearLevelBounded(t *testing.T) {
	if !techSelected("reram") {
		t.Skipf("-tech=%s: wear-levelling is ReRAM-specific", *techFilter)
	}
	const period = 8
	const writes = 4096
	base := cache.Params{
		Name: "wl", SizeBytes: 16 * 4 * 64, Assoc: 4, LineBytes: 64,
		Modules: 1, Banks: 1, TrackWear: true,
	}
	levP := base
	levP.WearLevelPeriod = period
	run := func(p cache.Params) *cache.Cache {
		c, err := cache.New(p)
		if err != nil {
			t.Fatal(err)
		}
		numSets := uint64(c.NumSets())
		for i := 0; i < writes; i++ {
			// Two tags mapping to set 0: both stay resident, so after
			// the two fills every write is a hit on the same frames.
			tag := uint64(i % 2)
			c.Access(cache.Addr(tag*numSets*uint64(p.LineBytes)), true)
		}
		return c
	}
	spread := func(c *cache.Cache) uint64 {
		wear := c.WearCounters()[:base.Assoc] // set 0's frames
		minW, maxW := wear[0], wear[0]
		for _, w := range wear[1:] {
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
		}
		return maxW - minW
	}
	unlev := run(base)
	lev := run(levP)
	su, sl := spread(unlev), spread(lev)
	if unlev.WearLevelSwaps() != 0 {
		t.Fatalf("unlevelled cache performed %d swaps", unlev.WearLevelSwaps())
	}
	if lev.WearLevelSwaps() == 0 {
		t.Fatal("levelled cache never swapped")
	}
	if su < writes/2 {
		t.Fatalf("schedule not skewed enough: unlevelled spread %d", su)
	}
	if sl*16 > su {
		t.Fatalf("levelling did not reduce wear spread by 16x: levelled %d vs unlevelled %d", sl, su)
	}
	if sl > 12*period {
		t.Fatalf("levelled wear spread %d exceeds bound %d", sl, 12*period)
	}
}
