package cache

import (
	"testing"

	"repro/internal/xrand"
)

// benchL2 builds the paper's single-core L2: 4 MB, 16-way, 64 B
// lines, 8 modules, 4 banks, leader sets every 64th set.
func benchL2() *Cache {
	return MustNew(Params{
		Name: "L2", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64,
		Latency: 12, Modules: 8, SamplingRatio: 64, Banks: 4,
	})
}

// benchAddrs pre-generates a deterministic address stream with a hot
// working set (hits) and a cold tail (misses), so the benchmark
// exercises both probe paths without timing the generator.
func benchAddrs(n int) []Addr {
	rng := xrand.New(99)
	addrs := make([]Addr, n)
	for i := range addrs {
		if rng.Float64() < 0.8 {
			// Hot: 2 MB working set, fits the 4 MB cache.
			addrs[i] = Addr(rng.Uint64n(2<<20) &^ 63)
		} else {
			// Cold: 1 GB region, mostly misses.
			addrs[i] = Addr(1<<32 + rng.Uint64n(1<<30)&^63)
		}
	}
	return addrs
}

// BenchmarkCacheAccess measures the demand-access hot path (probe,
// LRU promotion, fill, victim selection) in ns/op and allocs/op.
func BenchmarkCacheAccess(b *testing.B) {
	c := benchL2()
	addrs := benchAddrs(1 << 16)
	// Warm the cache so steady-state hit/miss mix is realistic.
	for _, a := range addrs {
		c.Access(a, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], i&7 == 0)
	}
}

// BenchmarkCacheAccessReconfigured is the same stream against a cache
// shrunk to 4 active ways per module — the state ESTEEM converges to
// on compact workloads, where disabled-way skipping dominates probes.
func BenchmarkCacheAccessReconfigured(b *testing.B) {
	c := benchL2()
	for m := 0; m < c.NumModules(); m++ {
		c.SetActiveWays(m, 4)
	}
	addrs := benchAddrs(1 << 16)
	for _, a := range addrs {
		c.Access(a, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], i&7 == 0)
	}
}

// BenchmarkCacheNew measures cache construction, which every
// simulation job in a sweep pays before its first access.
func BenchmarkCacheNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if benchL2() == nil {
			b.Fatal("nil cache")
		}
	}
}

// BenchmarkActiveFraction measures the per-interval F_A computation.
func BenchmarkActiveFraction(b *testing.B) {
	c := benchL2()
	for m := 0; m < c.NumModules(); m += 2 {
		c.SetActiveWays(m, 5)
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = c.ActiveFraction()
	}
	if sink <= 0 || sink > 1 {
		b.Fatalf("active fraction %v out of range", sink)
	}
}
