// Multi-process end-to-end tests: real esteem-serve binaries on
// localhost, one coordinator and several workers, exercising the
// acceptance gate of the distributed sweep — a cluster sweep is
// byte-identical to a standalone sweep of the same spec, including
// after SIGKILLing a worker mid-sweep.
package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	serveBin  string
	buildDir  string
	buildOnce sync.Once
	buildErr  error
)

// builtServeBin builds esteem-serve on first use — lazily, so -short
// runs and benchmark-only runs never pay the build.
func builtServeBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cluster-e2e-")
		if err != nil {
			buildErr = err
			return
		}
		buildDir = dir
		serveBin = filepath.Join(dir, "esteem-serve")
		out, err := exec.Command("go", "build", "-o", serveBin, "repro/cmd/esteem-serve").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building esteem-serve: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return serveBin
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

// node is one spawned esteem-serve process.
type node struct {
	cmd *exec.Cmd
	url string
}

// startNode spawns esteem-serve with the given extra args on a free
// port and waits for it to answer /healthz.
func startNode(t *testing.T, name string, extra ...string) *node {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-log-level", "warn",
	}, extra...)
	cmd := exec.Command(builtServeBin(t), args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	n := &node{cmd: cmd}
	t.Cleanup(func() {
		if n.cmd.Process != nil {
			n.cmd.Process.Kill()
			n.cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("%s did not become healthy", name)
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			n.url = "http://" + strings.TrimSpace(string(b))
			if resp, err := http.Get(n.url + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return n
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func (n *node) pid() int { return n.cmd.Process.Pid }

// sweepSpec is the shared job body: 3 single-core workloads x 2
// techniques = 6 units. measure scales the per-unit simulator work.
func sweepSpec(seed uint64, measure int) string {
	return fmt.Sprintf(`{
		"config": {"Cores":1, "WarmupInstr":5000, "MeasureInstr":%d, "IntervalCycles":10000, "Seed":%d},
		"benchmarks": [["gcc"],["gobmk"],["nekbone"]],
		"techniques": ["baseline","esteem"]
	}`, measure, seed)
}

// jobView mirrors the fields of GET /v1/jobs/{id} the tests consume.
type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
	Units []struct {
		Label string `json:"label"`
		Key   string `json:"key"`
	} `json:"units"`
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// submitJob posts spec and returns the job id.
func submitJob(t *testing.T, server, spec string) string {
	t.Helper()
	resp, err := http.Post(server+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %s decode err %v", resp.Status, err)
	}
	return v.ID
}

// waitJob polls until the job terminates, failing the test unless it
// lands in "done".
func waitJob(t *testing.T, server, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v jobView
		getJSON(t, server+"/v1/jobs/"+id, &v)
		switch v.State {
		case "done":
			return v
		case "failed", "canceled":
			t.Fatalf("job %s %s: %s", id, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %s", id, v.State, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// fetchArtifacts downloads every unit's artifact bytes by key.
func fetchArtifacts(t *testing.T, server string, v jobView) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, u := range v.Units {
		resp, err := http.Get(server + "/v1/artifacts/" + u.Key)
		if err != nil {
			t.Fatalf("artifact %s: %v", u.Key[:12], err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s (%s): %s", u.Key[:12], u.Label, resp.Status)
		}
		out[u.Key] = body.Bytes()
	}
	return out
}

// metricsView mirrors /metrics?format=json on a coordinator.
type metricsView struct {
	Gauges   map[string]float64 `json:"gauges"`
	Counters map[string]uint64  `json:"counters"`
}

// workerStats mirrors a worker's /metrics?format=json (the
// fleet-mergeable MetricsJSON shape).
type workerStats struct {
	Counters map[string]uint64 `json:"counters"`
}

// statusView mirrors GET /v1/cluster/status.
type statusView struct {
	Workers []struct {
		URL  string `json:"url"`
		Held int    `json:"held_leases"`
	} `json:"workers"`
}

// runStandalone computes the reference artifact set for spec on a
// fresh standalone server.
func runStandalone(t *testing.T, spec string, timeout time.Duration) map[string][]byte {
	t.Helper()
	n := startNode(t, "standalone")
	v := waitJob(t, n.url, submitJob(t, n.url, spec), timeout)
	arts := fetchArtifacts(t, n.url, v)
	n.cmd.Process.Kill()
	n.cmd.Wait()
	return arts
}

// TestClusterSweepByteIdentity: the acceptance gate's happy path. A
// coordinator with two workers must produce artifacts byte-identical
// to a standalone server's for the same spec, with every simulation
// computed exactly once across the cluster even when two identical
// jobs are submitted concurrently.
func TestClusterSweepByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	spec := sweepSpec(11, 20000)
	want := runStandalone(t, spec, 60*time.Second)

	coord := startNode(t, "coordinator", "-role", "coordinator", "-lease-ttl", "10s", "-heartbeat", "500ms")
	w1 := startNode(t, "worker1", "-role", "worker", "-join", coord.url)
	w2 := startNode(t, "worker2", "-role", "worker", "-join", coord.url)

	// Two identical jobs in flight at once: their units share keys, so
	// the lease table must coalesce them (cluster-wide single-flight).
	idA := submitJob(t, coord.url, spec)
	idB := submitJob(t, coord.url, spec)
	vA := waitJob(t, coord.url, idA, 120*time.Second)
	vB := waitJob(t, coord.url, idB, 120*time.Second)

	got := fetchArtifacts(t, coord.url, vA)
	if len(got) != len(want) {
		t.Fatalf("cluster produced %d artifacts, standalone %d", len(got), len(want))
	}
	for key, wantBytes := range want {
		gotBytes, ok := got[key]
		if !ok {
			t.Fatalf("cluster job missing key %s", key[:12])
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Errorf("artifact %s differs between cluster and standalone", key[:12])
		}
	}
	for _, u := range vB.Units {
		if _, ok := want[u.Key]; !ok {
			t.Errorf("job B derived unexpected key %s", u.Key[:12])
		}
	}

	// Exactly-once compute: across both workers, simulations computed
	// must equal the number of unique units (duplicate jobs and
	// replicated reads add zero).
	var computed uint64
	for _, w := range []*node{w1, w2} {
		var st workerStats
		getJSON(t, w.url+"/metrics?format=json", &st)
		computed += st.Counters["esteem_worker_sims_computed_total"]
	}
	if computed != uint64(len(want)) {
		t.Errorf("cluster computed %d simulations for %d unique units", computed, len(want))
	}

	var mv metricsView
	getJSON(t, coord.url+"/metrics?format=json", &mv)
	if got := mv.Counters["esteem_cluster_tasks_submitted_total"]; got != uint64(len(want)) {
		t.Errorf("tasks_submitted_total = %d, want %d (duplicate jobs must coalesce)", got, len(want))
	}
	if got := mv.Gauges["esteem_cluster_workers_live"]; got != 2 {
		t.Errorf("workers_live = %v, want 2", got)
	}

	// Fleet aggregation must agree with the per-worker scrapes: the
	// fleet's worker sim total is exactly the sum over members.
	var fleet struct {
		Fleet struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"fleet"`
		Members []struct {
			URL   string `json:"url"`
			Error string `json:"error"`
		} `json:"members"`
	}
	getJSON(t, coord.url+"/v1/cluster/metrics?format=json", &fleet)
	if got := fleet.Fleet.Counters["esteem_worker_sims_computed_total"]; got != computed {
		t.Errorf("fleet sims_computed_total = %d, want the members' sum %d", got, computed)
	}
	for _, m := range fleet.Members {
		if m.Error != "" {
			t.Errorf("fleet member %s unreachable: %s", m.URL, m.Error)
		}
	}
}

// TestClusterWorkerKill: the acceptance gate's failure path. With
// three workers and a short lease TTL, SIGKILL a worker while it
// holds a lease mid-sweep; the job must still complete with artifacts
// byte-identical to a standalone run, and the coordinator's metrics
// must show the membership expiry and the re-issued leases.
func TestClusterWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	// Heavier units (~hundreds of ms each) so the kill reliably lands
	// while the victim is executing.
	spec := sweepSpec(23, 3_000_000)
	want := runStandalone(t, spec, 120*time.Second)

	coord := startNode(t, "coordinator",
		"-role", "coordinator", "-lease-ttl", "2s", "-heartbeat", "250ms")
	workers := map[string]*node{}
	for i := 1; i <= 3; i++ {
		w := startNode(t, fmt.Sprintf("worker%d", i), "-role", "worker", "-join", coord.url)
		workers[w.url] = w
	}

	var before metricsView
	getJSON(t, coord.url+"/metrics?format=json", &before)

	id := submitJob(t, coord.url, spec)

	// Wait until some worker holds a lease, then SIGKILL it.
	var victim *node
	deadline := time.Now().Add(30 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("no worker ever held a lease")
		}
		var sv statusView
		getJSON(t, coord.url+"/v1/cluster/status", &sv)
		for _, w := range sv.Workers {
			if w.Held > 0 {
				victim = workers[w.URL]
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(victim.pid(), syscall.SIGKILL); err != nil {
		t.Fatalf("killing victim: %v", err)
	}
	victim.cmd.Wait()
	t.Logf("killed worker %s mid-sweep", victim.url)

	v := waitJob(t, coord.url, id, 180*time.Second)
	got := fetchArtifacts(t, coord.url, v)
	for key, wantBytes := range want {
		gotBytes, ok := got[key]
		if !ok {
			t.Fatalf("missing artifact %s after worker kill", key[:12])
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Errorf("artifact %s differs after worker kill", key[:12])
		}
	}

	// Scrape-delta assertions: the kill must be visible in the
	// coordinator's cluster metrics.
	var after metricsView
	getJSON(t, coord.url+"/metrics?format=json", &after)
	delta := func(name string) uint64 { return after.Counters[name] - before.Counters[name] }
	if d := delta("esteem_cluster_workers_expired_total"); d < 1 {
		t.Errorf("workers_expired_total delta = %d, want >= 1", d)
	}
	if d := delta("esteem_cluster_leases_expired_total"); d < 1 {
		t.Errorf("leases_expired_total delta = %d, want >= 1", d)
	}
	if d := delta("esteem_cluster_leases_reissued_total"); d < 1 {
		t.Errorf("leases_reissued_total delta = %d, want >= 1", d)
	}
	if d := delta("esteem_cluster_tasks_completed_total"); d != uint64(len(want)) {
		t.Errorf("tasks_completed_total delta = %d, want %d", d, len(want))
	}
	if got := after.Gauges["esteem_cluster_workers_live"]; got != 2 {
		t.Errorf("workers_live after kill = %v, want 2", got)
	}

	// The event journal must tell the same story causally: the victim's
	// expiry, and for at least one task a lease-expired followed (by
	// sequence number) by a lease-reissued.
	var journal struct {
		Events []struct {
			Seq    int64  `json:"seq"`
			Kind   string `json:"kind"`
			Worker string `json:"worker"`
			Key    string `json:"key"`
		} `json:"events"`
		NextSeq int64 `json:"next_seq"`
	}
	getJSON(t, coord.url+"/v1/cluster/events", &journal)
	if len(journal.Events) == 0 || journal.NextSeq <= 1 {
		t.Fatalf("event journal empty after kill scenario: %+v", journal)
	}
	expiredWorker := false
	expiredAt := map[string]int64{} // key -> seq of its first lease-expired
	reissued := false
	for _, ev := range journal.Events {
		switch ev.Kind {
		case "worker-expired":
			if ev.Worker == victim.url {
				expiredWorker = true
			}
		case "lease-expired":
			if _, ok := expiredAt[ev.Key]; !ok {
				expiredAt[ev.Key] = ev.Seq
			}
		case "lease-reissued":
			if seq, ok := expiredAt[ev.Key]; ok && ev.Seq > seq {
				reissued = true
			}
		}
	}
	if !expiredWorker {
		t.Errorf("journal has no worker-expired event for the victim %s", victim.url)
	}
	if len(expiredAt) == 0 {
		t.Error("journal has no lease-expired event")
	}
	if !reissued {
		t.Error("journal never re-issued an expired lease (expiry -> reissue causality missing)")
	}
}
