package metrics

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// exportFixture is a comparison set with enough spread (negative
// deltas, sub-percent values, multi-core mixes) to exercise the
// formatters' precision.
func exportFixture() []Comparison {
	return []Comparison{
		{
			Workload: "gobmk", Technique: "esteem",
			EnergySavingPct: 27.1342, WeightedSpeedup: 0.99873, FairSpeedup: 0.99871,
			RPKIDecrease: 151.25, MPKIIncrease: 0.0421, ActiveRatioPct: 31.5,
		},
		{
			Workload: "GkNe", Technique: "esteem",
			EnergySavingPct: -1.75, WeightedSpeedup: 1.0012, FairSpeedup: 1.0008,
			RPKIDecrease: 88.5, MPKIIncrease: -0.03, ActiveRatioPct: 55.25,
		},
	}
}

// TestCSVJSONAgreement pins the CSV exporter to the canonical-JSON
// exporter: both must encode the same field values for the same
// comparisons (CSV at its documented 4-decimal precision).
func TestCSVJSONAgreement(t *testing.T) {
	cs := exportFixture()

	// Decode the JSON export into generic maps keyed by the snake_case
	// tags.
	jb, err := obs.MarshalCanonical(cs)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON []map[string]any
	if err := json.Unmarshal(jb, &fromJSON); err != nil {
		t.Fatal(err)
	}

	// Decode the CSV export against its header row.
	lines := strings.Split(strings.TrimSpace(FormatCSV(cs)), "\n")
	if len(lines) != len(cs)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(cs)+1)
	}
	header := strings.Split(lines[0], ",")

	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			t.Fatalf("row %d has %d fields, header has %d", i, len(fields), len(header))
		}
		for col, key := range header {
			jv, ok := fromJSON[i][key]
			if !ok {
				t.Fatalf("JSON export lacks key %q (CSV header and JSON tags diverged)", key)
			}
			switch v := jv.(type) {
			case string:
				if fields[col] != v {
					t.Errorf("row %d %s: CSV %q != JSON %q", i, key, fields[col], v)
				}
			case float64:
				got, err := strconv.ParseFloat(fields[col], 64)
				if err != nil {
					t.Fatalf("row %d %s: unparsable CSV number %q", i, key, fields[col])
				}
				// CSV prints %.4f; allow half an ulp at that precision.
				if diff := got - v; diff > 0.00005 || diff < -0.00005 {
					t.Errorf("row %d %s: CSV %v != JSON %v", i, key, got, v)
				}
			default:
				t.Fatalf("row %d %s: unexpected JSON type %T", i, key, jv)
			}
		}
	}
}

// TestFormatTableMatchesSummarize checks that the table's MEAN row is
// the Summarize aggregate (not a per-column re-average).
func TestFormatTableMatchesSummarize(t *testing.T) {
	cs := exportFixture()
	s := Summarize(cs)
	out := FormatTable("t", map[string][]Comparison{"esteem": cs})
	var meanLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "MEAN") {
			meanLine = line
		}
	}
	if meanLine == "" {
		t.Fatal("no MEAN row in table output")
	}
	fields := strings.Fields(meanLine)
	// MEAN %esaving ws fs rpki-dec mpki-inc activ%
	if len(fields) != 7 {
		t.Fatalf("MEAN row has %d fields: %q", len(fields), meanLine)
	}
	want := []float64{s.EnergySavingPct, s.WeightedSpeedup, s.FairSpeedup,
		s.RPKIDecrease, s.MPKIIncrease, s.ActiveRatioPct}
	tol := []float64{0.005, 0.0005, 0.0005, 0.05, 0.005, 0.05}
	for i, w := range want {
		got, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil {
			t.Fatalf("MEAN field %d unparsable: %q", i, fields[i+1])
		}
		if d := got - w; d > tol[i] || d < -tol[i] {
			t.Errorf("MEAN field %d = %v, Summarize says %v", i, got, w)
		}
	}
}

// TestComparisonJSONRoundTrip pins the snake_case JSON tags: a
// Comparison must survive MarshalCanonical + Unmarshal unchanged
// (fixture values stay within the 12-significant-digit canon).
func TestComparisonJSONRoundTrip(t *testing.T) {
	cs := exportFixture()
	b, err := obs.MarshalCanonical(cs)
	if err != nil {
		t.Fatal(err)
	}
	var back []Comparison
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cs) {
		t.Fatalf("round trip lost rows: %d -> %d", len(cs), len(back))
	}
	for i := range cs {
		if cs[i] != back[i] {
			t.Errorf("row %d changed in round trip:\n  in  %+v\n  out %+v", i, cs[i], back[i])
		}
	}
}
