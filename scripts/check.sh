#!/bin/sh
# check.sh — the repository's verification gate. Run before every
# commit (or via `make check`): build, vet, tests, and the race
# detector over the full module. The race pass matters since the
# internal/runner engine executes simulations on parallel workers; its
# tests drive pools at up to 8 workers.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./... -count=1

echo "== go test -race ./... =="
go test -race ./... -count=1

echo "== OK =="
