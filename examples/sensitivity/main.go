// Sensitivity: sweep ESTEEM's algorithm parameters (α, A_min, module
// count) on one benchmark, mirroring the paper's Table 3 study, and
// show the energy/performance trade-off each knob controls.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	esteem "repro"
)

func main() {
	const bench = "sphinx"
	base := run(esteem.Baseline, func(*esteem.Config) {})

	fmt.Printf("%s, 1-core, 4MB L2: ESTEEM parameter sweep (vs baseline)\n\n", bench)
	fmt.Printf("%-16s %9s %7s %9s %8s\n", "variant", "%esaving", "ws", "mpki-inc", "activ%")

	show := func(label string, mutate func(*esteem.Config)) {
		r := run(esteem.Esteem, mutate)
		c := esteem.Compare(bench, base, r)
		fmt.Printf("%-16s %9.2f %7.3f %9.2f %8.1f\n",
			label, c.EnergySavingPct, c.WeightedSpeedup, c.MPKIIncrease, c.ActiveRatioPct)
	}

	show("default", func(*esteem.Config) {})
	// Lower α = more aggressive turn-off (covers fewer hits).
	show("alpha=0.95", func(c *esteem.Config) { c.Esteem.Alpha = 0.95 })
	show("alpha=0.99", func(c *esteem.Config) { c.Esteem.Alpha = 0.99 })
	// A_min bounds the worst case.
	show("amin=2", func(c *esteem.Config) { c.Esteem.AMin = 2 })
	show("amin=4", func(c *esteem.Config) { c.Esteem.AMin = 4 })
	// Module count sets reconfiguration granularity.
	show("2 modules", func(c *esteem.Config) { c.Modules = 2 })
	show("32 modules", func(c *esteem.Config) { c.Modules = 32 })
	// Leader-set density trades profiling fidelity for overhead.
	show("Rs=32", func(c *esteem.Config) { c.SamplingRatio = 32 })
	show("Rs=128", func(c *esteem.Config) { c.SamplingRatio = 128 })
	// The paper's named future work: damp per-interval swings.
	show("maxdelta=2", func(c *esteem.Config) { c.Esteem.MaxWayDelta = 2 })

	// Equation 1: the counter overhead of the default configuration.
	fmt.Printf("\nEquation 1 overhead (4MB, 16-way, 16 modules): %.3f%% of L2 capacity\n",
		esteem.OverheadPercent(4096, 16, 16, 512, 40))
}

func run(tech esteem.Technique, mutate func(*esteem.Config)) *esteem.Result {
	cfg := esteem.DefaultConfig(1)
	cfg.Technique = tech
	cfg.MeasureInstr = 16_000_000
	cfg.WarmupInstr = 8_000_000
	mutate(&cfg)
	r, err := esteem.Run(cfg, []string{"sphinx"})
	if err != nil {
		log.Fatal(err)
	}
	return r
}
