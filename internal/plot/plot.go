// Package plot renders simple, dependency-free ASCII charts for the
// benchmark harness: horizontal bar charts for the per-workload
// figures (the paper's Figs. 3–6 are bar charts) and sparklines for
// time series (Fig. 2's active-ratio trace).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders bars as a horizontal ASCII chart of the given
// width (columns used for the bars themselves). Negative values
// render to the left of the zero axis, positive to the right, with
// the axis placed proportionally. Width < 10 is clamped to 10.
func BarChart(title, unit string, bars []Bar, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(bars) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minV, maxV := 0.0, 0.0
	labelW := 0
	for _, bar := range bars {
		minV = math.Min(minV, bar.Value)
		maxV = math.Max(maxV, bar.Value)
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	// Column of the zero axis.
	zeroCol := int(math.Round(-minV / span * float64(width)))
	for _, bar := range bars {
		cells := make([]byte, width+1)
		for i := range cells {
			cells[i] = ' '
		}
		if zeroCol >= 0 && zeroCol <= width {
			cells[zeroCol] = '|'
		}
		barLen := int(math.Round(math.Abs(bar.Value) / span * float64(width)))
		if bar.Value >= 0 {
			for i := 0; i < barLen && zeroCol+1+i <= width; i++ {
				cells[zeroCol+1+i] = '#'
			}
		} else {
			for i := 0; i < barLen && zeroCol-1-i >= 0; i++ {
				cells[zeroCol-1-i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s %s %8.2f%s\n", labelW, bar.Label, string(cells), bar.Value, unit)
	}
	return b.String()
}

// sparkLevels are the eight block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line block-character series
// scaled to [lo, hi]; out-of-range values are clamped. It returns an
// empty string for no values. lo must be < hi.
func Sparkline(values []float64, lo, hi float64) string {
	if len(values) == 0 {
		return ""
	}
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	for _, v := range values {
		t := (v - lo) / (hi - lo)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		idx := int(t * float64(len(sparkLevels)-1))
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Series renders a labelled sparkline with its range annotated.
func Series(label string, values []float64) string {
	if len(values) == 0 {
		return fmt.Sprintf("%s: (no data)\n", label)
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return fmt.Sprintf("%s [%.2f..%.2f] %s\n", label, lo, hi, Sparkline(values, lo, hi))
}
