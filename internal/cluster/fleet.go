// Fleet metrics aggregation: GET /v1/cluster/metrics pulls every live
// member's JSON metrics snapshot, merges counters/gauges/histograms
// into fleet totals, and exposes the result as Prometheus text (fleet
// aggregates unlabeled, per-member breakdowns labeled {node="..."})
// or JSON (?format=json).
//
// MetricsJSON is structurally identical to internal/serve's
// MetricsView — duplicated here because serve imports cluster, and a
// shared type would cycle. The JSON tags are the contract.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// HistBucket is one cumulative histogram bucket (count of samples
// ≤ LE seconds).
type HistBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramJSON is one histogram's snapshot.
type HistogramJSON struct {
	Count      uint64       `json:"count"`
	SumSeconds float64      `json:"sum_seconds"`
	Buckets    []HistBucket `json:"buckets"`
}

// MetricsJSON is one node's metrics snapshot, the shape every member
// serves on /metrics?format=json.
type MetricsJSON struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Gauges        map[string]float64       `json:"gauges"`
	Counters      map[string]uint64        `json:"counters"`
	Histograms    map[string]HistogramJSON `json:"histograms"`
}

// MemberMetrics is one member's row in a fleet view: its snapshot, or
// the error that prevented fetching one (unreachable members are
// reported, not silently excluded — but their zeros don't pollute the
// fleet sums).
type MemberMetrics struct {
	URL     string       `json:"url"`
	Error   string       `json:"error,omitempty"`
	Metrics *MetricsJSON `json:"metrics,omitempty"`
}

// FleetView is the JSON shape of GET /v1/cluster/metrics?format=json.
type FleetView struct {
	Self    string          `json:"self"`
	Members []MemberMetrics `json:"members"`
	Fleet   MetricsJSON     `json:"fleet"`
}

// MergeMetrics folds src into dst: counters and gauges sum, histogram
// buckets merge bucket-wise by LE boundary, and uptime takes the max
// (a fleet is as old as its oldest member).
func MergeMetrics(dst *MetricsJSON, src MetricsJSON) {
	if src.UptimeSeconds > dst.UptimeSeconds {
		dst.UptimeSeconds = src.UptimeSeconds
	}
	for k, v := range src.Gauges {
		dst.Gauges[k] += v
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	for k, h := range src.Histograms {
		into := dst.Histograms[k]
		into.Count += h.Count
		into.SumSeconds += h.SumSeconds
		byLE := make(map[float64]uint64, len(into.Buckets))
		for _, b := range into.Buckets {
			byLE[b.LE] = b.Count
		}
		for _, b := range h.Buckets {
			byLE[b.LE] += b.Count
		}
		into.Buckets = into.Buckets[:0]
		for le, n := range byLE {
			into.Buckets = append(into.Buckets, HistBucket{LE: le, Count: n})
		}
		sort.Slice(into.Buckets, func(i, j int) bool { return into.Buckets[i].LE < into.Buckets[j].LE })
		dst.Histograms[k] = into
	}
}

// FleetMetrics fetches every live member's snapshot in parallel and
// returns the merged view. Fetch failures degrade to per-member Error
// fields; the fleet totals cover reachable members only.
func (c *Coordinator) FleetMetrics(ctx context.Context) FleetView {
	members := c.MemberURLs()
	view := FleetView{
		Self:    c.cfg.Self,
		Members: make([]MemberMetrics, len(members)),
		Fleet: MetricsJSON{
			Gauges:     map[string]float64{},
			Counters:   map[string]uint64{},
			Histograms: map[string]HistogramJSON{},
		},
	}
	var wg sync.WaitGroup
	for i, u := range members {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			view.Members[i] = MemberMetrics{URL: u}
			m, err := c.fetchMemberMetrics(ctx, u)
			if err != nil {
				view.Members[i].Error = err.Error()
				return
			}
			view.Members[i].Metrics = m
		}(i, u)
	}
	wg.Wait()
	for _, m := range view.Members {
		if m.Metrics != nil {
			MergeMetrics(&view.Fleet, *m.Metrics)
		}
	}
	return view
}

func (c *Coordinator) fetchMemberMetrics(ctx context.Context, base string) (*MetricsJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var m MetricsJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxClusterBody)).Decode(&m); err != nil {
		return nil, fmt.Errorf("decoding metrics: %w", err)
	}
	if m.Gauges == nil {
		m.Gauges = map[string]float64{}
	}
	if m.Counters == nil {
		m.Counters = map[string]uint64{}
	}
	if m.Histograms == nil {
		m.Histograms = map[string]HistogramJSON{}
	}
	return &m, nil
}

func (c *Coordinator) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	view := c.FleetMetrics(r.Context())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, view)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeFleetText(w, view)
}

// writeFleetText renders the Prometheus text view: fleet aggregates
// under the original (unlabeled) series names, so existing single-node
// scrapes and the smoke tests' `awk '$1 == metric'` keep working, then
// per-member breakdowns labeled {node="URL"}.
func writeFleetText(w io.Writer, view FleetView) {
	reachable := 0
	for _, m := range view.Members {
		if m.Metrics != nil {
			reachable++
		}
	}
	fmt.Fprintf(w, "esteem_fleet_members %d\n", len(view.Members))
	fmt.Fprintf(w, "esteem_fleet_members_reachable %d\n", reachable)
	fmt.Fprintf(w, "esteem_fleet_uptime_seconds %g\n", view.Fleet.UptimeSeconds)
	writeMetricsText(w, view.Fleet, "")
	for _, m := range view.Members {
		if m.Metrics != nil {
			writeMetricsText(w, *m.Metrics, m.URL)
		}
	}
}

func writeMetricsText(w io.Writer, m MetricsJSON, node string) {
	label := ""
	bucketLabel := func(le string) string { return fmt.Sprintf("{le=%q}", le) }
	if node != "" {
		label = fmt.Sprintf("{node=%q}", node)
		bucketLabel = func(le string) string { return fmt.Sprintf("{node=%q,le=%q}", node, le) }
	}
	for _, k := range sortedKeys(m.Gauges) {
		fmt.Fprintf(w, "%s%s %g\n", k, label, m.Gauges[k])
	}
	for _, k := range sortedKeys(m.Counters) {
		fmt.Fprintf(w, "%s%s %d\n", k, label, m.Counters[k])
	}
	for _, k := range sortedKeys(m.Histograms) {
		h := m.Histograms[k]
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n", k, bucketLabel(fmt.Sprintf("%g", b.LE)), b.Count)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", k, bucketLabel("+Inf"), h.Count)
		fmt.Fprintf(w, "%s_sum%s %g\n", k, label, h.SumSeconds)
		fmt.Fprintf(w, "%s_count%s %d\n", k, label, h.Count)
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
