package runner

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/castore"
	"repro/internal/obs"
	"repro/internal/sim"
)

// cachedSweep runs one mini simulation through a sweep wired to the
// given store and returns the result.
func cachedSweep(t *testing.T, store *castore.Store, tech sim.Technique, wl []string) *sim.Result {
	t.Helper()
	s := NewSweep(2)
	s.SetCache(store)
	j := s.Sim(miniCfg(tech), wl)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return j.Result()
}

// closeEnough compares floats that round-tripped through canonical
// JSON (12 significant digits).
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= scale*1e-9
}

func TestSweepCacheHitMatchesColdRun(t *testing.T) {
	store, err := castore.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cold := cachedSweep(t, store, sim.Esteem, []string{"gcc"})
	if got := store.Stats(); got.Computes != 1 {
		t.Fatalf("cold run: stats %+v, want 1 compute", got)
	}
	warm := cachedSweep(t, store, sim.Esteem, []string{"gcc"})
	st := store.Stats()
	if st.Computes != 1 {
		t.Fatalf("warm run recomputed: stats %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("warm run did not hit the cache: stats %+v", st)
	}

	// The reconstructed result must agree on everything the frontends
	// and metrics read.
	if warm.Technique != cold.Technique ||
		warm.Refreshes != cold.Refreshes ||
		warm.L2 != cold.L2 ||
		warm.MM.Reads != cold.MM.Reads ||
		warm.MM.Writebacks != cold.MM.Writebacks ||
		warm.RefreshStallCycles != cold.RefreshStallCycles ||
		warm.ReconfigWritebacks != cold.ReconfigWritebacks {
		t.Fatalf("counter mismatch:\ncold %+v\nwarm %+v", cold, warm)
	}
	if !closeEnough(warm.Energy.Total(), cold.Energy.Total()) {
		t.Fatalf("energy mismatch: cold %.15g warm %.15g", cold.Energy.Total(), warm.Energy.Total())
	}
	if !closeEnough(warm.ActiveRatio, cold.ActiveRatio) {
		t.Fatalf("active ratio mismatch: cold %v warm %v", cold.ActiveRatio, warm.ActiveRatio)
	}
	if len(warm.Cores) != len(cold.Cores) {
		t.Fatalf("core count mismatch")
	}
	for i := range warm.Cores {
		w, c := warm.Cores[i], cold.Cores[i]
		if w.Benchmark != c.Benchmark || w.Instructions != c.Instructions ||
			w.Cycles != c.Cycles || !closeEnough(w.IPC, c.IPC) ||
			w.StallRefresh != c.StallRefresh || w.L1Misses != c.L1Misses {
			t.Fatalf("core %d mismatch:\ncold %+v\nwarm %+v", i, c, w)
		}
	}
	if warm.MPKI() != cold.MPKI() {
		t.Fatalf("MPKI mismatch: cold %v warm %v", cold.MPKI(), warm.MPKI())
	}
}

func TestSweepCacheIntervalsSurviveReconstruction(t *testing.T) {
	store, err := castore.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *sim.Result {
		s := NewSweep(1)
		s.SetCache(store)
		cfg := miniCfg(sim.Esteem)
		cfg.LogIntervals = true
		j := s.Sim(cfg, []string{"h264ref"})
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return j.Result()
	}
	cold := run()
	warm := run()
	if store.Stats().Computes != 1 {
		t.Fatalf("second logged run recomputed: %+v", store.Stats())
	}
	if len(cold.Intervals) == 0 {
		t.Fatal("cold run logged no intervals")
	}
	if len(warm.Intervals) != len(cold.Intervals) {
		t.Fatalf("interval count: cold %d warm %d", len(cold.Intervals), len(warm.Intervals))
	}
	for i := range warm.Intervals {
		w, c := warm.Intervals[i], cold.Intervals[i]
		if w.EndCycle != c.EndCycle || !closeEnough(w.ActiveRatio, c.ActiveRatio) {
			t.Fatalf("interval %d mismatch: cold %+v warm %+v", i, c, w)
		}
		if len(w.ActiveWays) != len(c.ActiveWays) {
			t.Fatalf("interval %d ways: cold %v warm %v", i, c.ActiveWays, w.ActiveWays)
		}
		for m := range w.ActiveWays {
			if w.ActiveWays[m] != c.ActiveWays[m] {
				t.Fatalf("interval %d ways: cold %v warm %v", i, c.ActiveWays, w.ActiveWays)
			}
		}
	}
}

func TestSweepCacheStoredBytesAreDeterministic(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	var bytes [2][]byte
	for i, dir := range []string{dir1, dir2} {
		store, err := castore.Open(dir, 8)
		if err != nil {
			t.Fatal(err)
		}
		cachedSweep(t, store, sim.RPV, []string{"lbm"})
		key, err := CacheKey(miniCfg(sim.RPV), []string{"lbm"})
		if err != nil {
			t.Fatal(err)
		}
		data, ok, err := store.Get(key)
		if err != nil || !ok {
			t.Fatalf("stored artifact missing: ok %v err %v", ok, err)
		}
		bytes[i] = data
	}
	if string(bytes[0]) != string(bytes[1]) {
		t.Fatal("two cold runs of the same job stored different bytes")
	}
	// The stored artifact must be a valid, deterministic run artifact.
	a, err := obs.ParseRun(bytes[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.StartedAt != "" || a.Manifest.WallMillis != 0 {
		t.Fatalf("stored manifest carries timing: %+v", a.Manifest)
	}
}

func TestSweepCacheKeySeparatesTechniques(t *testing.T) {
	kA, err := CacheKey(miniCfg(sim.Esteem), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	kB, err := CacheKey(miniCfg(sim.RPV), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	kC, err := CacheKey(miniCfg(sim.Esteem), []string{"lbm"})
	if err != nil {
		t.Fatal(err)
	}
	if kA == kB || kA == kC {
		t.Fatalf("keys collide: %s %s %s", kA, kB, kC)
	}
}

func TestSweepCacheSinkReceivesArtifactsOnHits(t *testing.T) {
	store, err := castore.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cachedSweep(t, store, sim.Esteem, []string{"gamess"})

	sink := &memorySink{}
	s := NewSweep(1)
	s.SetCache(store)
	s.SetSink(sink)
	s.Sim(miniCfg(sim.Esteem), []string{"gamess"})
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sink.artifacts) != 1 {
		t.Fatalf("sink got %d artifacts on a cache hit, want 1", len(sink.artifacts))
	}
	if sink.artifacts[0].Manifest.Technique != "esteem" {
		t.Fatalf("sink artifact manifest: %+v", sink.artifacts[0].Manifest)
	}
}

// memorySink collects artifacts in memory.
type memorySink struct {
	mu        sync.Mutex
	artifacts []obs.RunArtifact
}

func (m *memorySink) WriteRun(seq int, a obs.RunArtifact) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.artifacts = append(m.artifacts, a)
	return nil
}

func TestPoolTaskHookEvents(t *testing.T) {
	var mu sync.Mutex
	var events []TaskEvent
	p := NewPool(2, WithTaskHook(func(ev TaskEvent) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}))
	a := p.Task("a", func(context.Context) error { return nil })
	p.Task("b", func(context.Context) error { return nil }, a)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	byTask := map[int][]TaskEventType{}
	for _, ev := range events {
		byTask[ev.TaskID] = append(byTask[ev.TaskID], ev.Type)
		if ev.Total != 2 {
			t.Fatalf("event %+v has Total %d, want 2", ev, ev.Total)
		}
	}
	for id, seq := range byTask {
		if len(seq) != 2 || seq[0] != TaskStarted || seq[1] != TaskDone {
			t.Fatalf("task %d events = %v, want [started done]", id, seq)
		}
	}
	if len(byTask) != 2 {
		t.Fatalf("events for %d tasks, want 2", len(byTask))
	}
}

func TestPoolTaskHookFailureAndSkip(t *testing.T) {
	var mu sync.Mutex
	types := map[int][]TaskEventType{}
	p := NewPool(1, WithTaskHook(func(ev TaskEvent) {
		mu.Lock()
		defer mu.Unlock()
		types[ev.TaskID] = append(types[ev.TaskID], ev.Type)
	}))
	bad := p.Task("bad", func(context.Context) error { return context.DeadlineExceeded })
	dep := p.Task("dep", func(context.Context) error { return nil }, bad)
	if err := p.Run(context.Background()); err == nil {
		t.Fatal("run succeeded, want error")
	}

	mu.Lock()
	defer mu.Unlock()
	badSeq := types[bad.ID()]
	if len(badSeq) != 2 || badSeq[1] != TaskFailed {
		t.Fatalf("bad task events = %v, want terminal failed", badSeq)
	}
	depSeq := types[dep.ID()]
	if len(depSeq) == 0 || depSeq[len(depSeq)-1] != TaskSkipped {
		t.Fatalf("dependent task events = %v, want terminal skipped", depSeq)
	}
}
