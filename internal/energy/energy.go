// Package energy implements the ESTEEM paper's analytical energy
// model (Section 6.3, Equations 2–8):
//
//	E      = E_L2 + E_MM + E_Algo                         (2)
//	E_L2   = LE_L2 + DE_L2 + RE_L2                        (3)
//	LE_L2  = P_L2_leak * F_A * T                          (4)
//	DE_L2  = E_L2_dyn * (2*M_L2 + H_L2)                   (5)
//	RE_L2  = N_R * E_L2_dyn                               (6)
//	E_MM   = P_MM_leak * T + E_MM_dyn * A_MM              (7)
//	E_Algo = E_chi * N_L                                  (8)
//
// The L2 constants come from the paper's Table 2 (CACTI 5.3, 32 nm,
// 16-way eDRAM); main-memory constants are E_MM_dyn = 70 nJ and
// P_MM_leak = 0.18 W, and the block power-state transition energy is
// E_chi = 2 pJ. Refreshing a line costs the same energy as accessing
// it (the paper's assumption, following Refrint).
package energy

import (
	"fmt"
	"math"
	"sort"
)

// Constants from Section 6.3.
const (
	// MMDynJ is E_MM_dyn: main-memory energy per access (70 nJ).
	MMDynJ = 70e-9
	// MMLeakW is P_MM_leak: main-memory leakage power (0.18 W).
	MMLeakW = 0.18
	// TransitionJ is E_chi: energy per cache-block power-state
	// transition (2 pJ).
	TransitionJ = 2e-12
)

// table2 holds the paper's Table 2: per-access dynamic energy (nJ)
// and leakage power (W) for 16-way eDRAM caches at 32 nm.
var table2 = []struct {
	sizeMB int
	dynNJ  float64
	leakW  float64
}{
	{2, 0.186, 0.096},
	{4, 0.212, 0.116},
	{8, 0.282, 0.280},
	{16, 0.370, 0.456},
	{32, 0.467, 1.056},
}

// L2Energy returns (dynamic J/access, leakage W) for an eDRAM L2 of
// the given size. Sizes present in Table 2 return the paper's values
// exactly; other sizes within [2 MB, 32 MB] are log-log interpolated
// (the CACTI-mini substitute documented in DESIGN.md). Sizes outside
// the table's range return an error.
func L2Energy(sizeBytes int) (dynJ, leakW float64, err error) {
	mb := float64(sizeBytes) / (1 << 20)
	lo := table2[0]
	hi := table2[len(table2)-1]
	if mb < float64(lo.sizeMB) || mb > float64(hi.sizeMB) {
		return 0, 0, fmt.Errorf("energy: L2 size %.2f MB outside Table 2 range [%d,%d] MB", mb, lo.sizeMB, hi.sizeMB)
	}
	// Exact hit?
	for _, e := range table2 {
		if mb == float64(e.sizeMB) {
			return e.dynNJ * 1e-9, e.leakW, nil
		}
	}
	// Log-log interpolation between bracketing entries.
	i := sort.Search(len(table2), func(i int) bool { return float64(table2[i].sizeMB) > mb })
	a, b := table2[i-1], table2[i]
	t := (math.Log(mb) - math.Log(float64(a.sizeMB))) / (math.Log(float64(b.sizeMB)) - math.Log(float64(a.sizeMB)))
	interp := func(x, y float64) float64 {
		return math.Exp(math.Log(x)*(1-t) + math.Log(y)*t)
	}
	return interp(a.dynNJ, b.dynNJ) * 1e-9, interp(a.leakW, b.leakW), nil
}

// Model holds the constants needed to evaluate the equations for one
// simulated system.
type Model struct {
	// L2DynJ is E_L2_dyn in joules per access.
	L2DynJ float64
	// L2LeakW is P_L2_leak in watts.
	L2LeakW float64
	// MMDynJPerAccess is E_MM_dyn in joules.
	MMDynJPerAccess float64
	// MMLeakWatt is P_MM_leak in watts.
	MMLeakWatt float64
	// TransJ is E_chi in joules.
	TransJ float64
	// FreqHz converts cycles to seconds.
	FreqHz float64

	// L2ReadJ and L2WriteJ split the per-access dynamic energy by
	// direction for technologies with read/write asymmetry (STT-RAM,
	// ReRAM). When they are equal — including the zero value, the
	// symmetric eDRAM default — Eval uses the paper's combined
	// Equation (5) with L2DynJ exactly as before, so the eDRAM path
	// is bit-identical to the pre-interface model.
	L2ReadJ, L2WriteJ float64
	// L2RefreshJ is the energy per line refresh/scrub; 0 means
	// L2DynJ (the paper's assumption that a refresh costs one
	// access).
	L2RefreshJ float64
}

// WithTechnology returns a copy of m with technology scaling factors
// applied over the Table-2 eDRAM constants: per-read and per-write
// dynamic energy, per-refresh (scrub) energy and leakage power. A
// zero refresh factor leaves L2RefreshJ at 0 (no refresh clock). The
// all-ones eDRAM factors reproduce the unscaled model bit for bit
// (x*1 == x in IEEE 754, and equal read/write energies take Eval's
// symmetric Equation (5) path).
func (m Model) WithTechnology(read, write, refresh, leak float64) Model {
	m.L2ReadJ = m.L2DynJ * read
	m.L2WriteJ = m.L2DynJ * write
	if refresh > 0 {
		m.L2RefreshJ = m.L2DynJ * refresh
	}
	m.L2LeakW *= leak
	return m
}

// NewModel builds a Model for an L2 of the given size and a core
// clock of freqHz, using the paper's constants.
func NewModel(l2SizeBytes int, freqHz float64) (Model, error) {
	if freqHz <= 0 {
		return Model{}, fmt.Errorf("energy: frequency must be positive")
	}
	dyn, leak, err := L2Energy(l2SizeBytes)
	if err != nil {
		return Model{}, err
	}
	return Model{
		L2DynJ:          dyn,
		L2LeakW:         leak,
		MMDynJPerAccess: MMDynJ,
		MMLeakWatt:      MMLeakW,
		TransJ:          TransitionJ,
		FreqHz:          freqHz,
	}, nil
}

// Activity aggregates the measured quantities of one interval (or a
// whole run) that the equations consume.
type Activity struct {
	// Cycles is the elapsed time of the measurement in core cycles
	// (T = Cycles / FreqHz).
	Cycles uint64
	// L2Hits is H_L2 and L2Misses is M_L2.
	L2Hits, L2Misses uint64
	// L2WriteHits counts the subset of L2Hits that were writes. Only
	// read/write-asymmetric models consume it: every miss fills (a
	// write), so writes = L2WriteHits + L2Misses and reads =
	// (L2Hits - L2WriteHits) + L2Misses (the probe on a miss).
	L2WriteHits uint64
	// Refreshes is N_R: line refreshes performed.
	Refreshes uint64
	// ActiveFraction is F_A (1.0 for baseline and RPV).
	ActiveFraction float64
	// MMAccesses is A_MM: main-memory accesses (demand misses plus
	// writebacks).
	MMAccesses uint64
	// LinesTransitioned is N_L: block power-state transitions (0 for
	// baseline and RPV).
	LinesTransitioned uint64
}

// Add accumulates another activity record (e.g. per-interval records
// into a run total). ActiveFraction is combined as a cycle-weighted
// mean.
func (a *Activity) Add(b Activity) {
	totalCycles := a.Cycles + b.Cycles
	if totalCycles > 0 {
		a.ActiveFraction = (a.ActiveFraction*float64(a.Cycles) + b.ActiveFraction*float64(b.Cycles)) / float64(totalCycles)
	}
	a.Cycles = totalCycles
	a.L2Hits += b.L2Hits
	a.L2WriteHits += b.L2WriteHits
	a.L2Misses += b.L2Misses
	a.Refreshes += b.Refreshes
	a.MMAccesses += b.MMAccesses
	a.LinesTransitioned += b.LinesTransitioned
}

// Breakdown is the evaluated energy, per component, in joules.
type Breakdown struct {
	L2Leak    float64 // Equation (4)
	L2Dyn     float64 // Equation (5)
	L2Refresh float64 // Equation (6)
	MMLeak    float64 // first term of Equation (7)
	MMDyn     float64 // second term of Equation (7)
	Algo      float64 // Equation (8)
}

// L2 returns E_L2 (Equation 3).
func (b Breakdown) L2() float64 { return b.L2Leak + b.L2Dyn + b.L2Refresh }

// MM returns E_MM (Equation 7).
func (b Breakdown) MM() float64 { return b.MMLeak + b.MMDyn }

// Total returns E (Equation 2).
func (b Breakdown) Total() float64 { return b.L2() + b.MM() + b.Algo }

// Eval applies Equations (2)–(8) to the measured activity. Symmetric
// models (eDRAM, and any zero-value Model) use Equation (5) as
// printed; asymmetric models split DE_L2 into read energy (every hit
// probe plus the probe half of each miss) and write energy (write
// hits plus the fill half of each miss) — the same access counts,
// priced per direction.
func (m Model) Eval(a Activity) Breakdown {
	t := float64(a.Cycles) / m.FreqHz
	var l2Dyn float64
	if m.L2ReadJ == m.L2WriteJ {
		l2Dyn = m.L2DynJ * float64(2*a.L2Misses+a.L2Hits)
	} else {
		l2Dyn = m.L2ReadJ*float64(a.L2Hits-a.L2WriteHits+a.L2Misses) +
			m.L2WriteJ*float64(a.L2WriteHits+a.L2Misses)
	}
	refreshJ := m.L2RefreshJ
	if refreshJ == 0 {
		refreshJ = m.L2DynJ
	}
	return Breakdown{
		L2Leak:    m.L2LeakW * a.ActiveFraction * t,
		L2Dyn:     l2Dyn,
		L2Refresh: float64(a.Refreshes) * refreshJ,
		MMLeak:    m.MMLeakWatt * t,
		MMDyn:     m.MMDynJPerAccess * float64(a.MMAccesses),
		Algo:      m.TransJ * float64(a.LinesTransitioned),
	}
}

// SavingPercent returns the percentage energy saving of technique
// relative to base: 100 * (base - technique) / base.
func SavingPercent(base, technique float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - technique) / base
}
