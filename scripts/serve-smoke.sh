#!/bin/sh
# serve-smoke.sh — end-to-end smoke test of the simulation service.
#
# Builds esteem-serve and esteem-client, boots a daemon on a free
# port, and drives the full client workflow against it: submit, poll,
# stream events, fetch the result. Then proves the content-addressed
# store's headline guarantees with cmp(1):
#
#   1. a cache-hit resubmission returns byte-identical result bytes
#      and executes zero simulations;
#   2. a daemon restarted over the same store directory serves the
#      same bytes from disk, again executing nothing;
#   3. SIGTERM drains gracefully (the daemon exits 0).
set -eu
cd "$(dirname "$0")/.."
. ./scripts/lib.sh

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building service binaries =="
go build -o "$WORK/" ./cmd/esteem-serve ./cmd/esteem-client

start_daemon() {
    rm -f "$WORK/addr"
    "$WORK/esteem-serve" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
        -cache "$WORK/store" -job-timeout 2m >"$WORK/serve.log" 2>&1 &
    SERVE_PID=$!
    wait_file "$WORK/addr" 10 || { cat "$WORK/serve.log"; exit 1; }
    SERVER="http://$(cat "$WORK/addr")"
    wait_healthz "$SERVER" 15 || { cat "$WORK/serve.log"; exit 1; }
    echo "== daemon up at $SERVER =="
}

stop_daemon() {
    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID" || { echo "daemon exited non-zero on SIGTERM"; cat "$WORK/serve.log"; exit 1; }
    SERVE_PID=""
}

# submit_job VAR: submits the canonical tiny job and stores its id.
SUBMIT_ARGS="-bench gcc -technique esteem -instr 200000 -warmup 50000 -interval 100000 -seed 1 -wait"
submit_job() {
    "$WORK/esteem-client" submit -server "$SERVER" $SUBMIT_ARGS 2>/dev/null |
        sed -n 's/^  "id": "\([0-9a-f]*\)",$/\1/p'
}

metric() {
    curl -sf "$SERVER/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

start_daemon

echo "== cold submit =="
COLD_ID="$(submit_job)"
[ -n "$COLD_ID" ] || { echo "submit returned no job id"; exit 1; }
"$WORK/esteem-client" result -server "$SERVER" -o "$WORK/cold.json" "$COLD_ID"

echo "== event stream =="
"$WORK/esteem-client" watch -server "$SERVER" "$COLD_ID" | tee "$WORK/events.log"
grep -q '"state":"done"' "$WORK/events.log" || { echo "event stream missing terminal state"; exit 1; }
grep -q '"task":"done"' "$WORK/events.log" || { echo "event stream missing task events"; exit 1; }

echo "== trace export =="
# The client validates the span tree (every span parented, start <=
# end, parents containing children) and enforces that the job's
# queue/run phases account for >= 95% of its wall-clock.
"$WORK/esteem-client" trace -server "$SERVER" -min-coverage 0.95 \
    -o "$WORK/trace-tree.json" "$COLD_ID" 2>"$WORK/trace.log"
cat "$WORK/trace.log"
"$WORK/esteem-client" trace -server "$SERVER" -format chrome \
    -o "$WORK/trace-chrome.json" "$COLD_ID" 2>/dev/null
grep -q '"traceEvents"' "$WORK/trace-chrome.json" || { echo "chrome trace malformed"; exit 1; }
for phase in '"queue"' '"run"' '"task"' '"sim"' '"warmup"' '"measure"'; do
    grep -q "$phase" "$WORK/trace-tree.json" || { echo "trace missing $phase span"; exit 1; }
done
# One trace ID end to end: the SSE events and the exported tree agree.
EVENT_TID="$(sed -n 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/p' "$WORK/events.log" | sort -u)"
TREE_TID="$(sed -n 's/.*"trace_id": *"\([0-9a-f]*\)".*/\1/p' "$WORK/trace-tree.json" | head -1)"
[ -n "$TREE_TID" ] || { echo "trace tree has no trace_id"; exit 1; }
[ "$EVENT_TID" = "$TREE_TID" ] || { echo "trace ids diverge: events=$EVENT_TID tree=$TREE_TID"; exit 1; }
echo "trace id $TREE_TID consistent across events and span tree"

echo "== warm submit (cache hit) =="
WARM_ID="$(submit_job)"
"$WORK/esteem-client" result -server "$SERVER" -o "$WORK/warm.json" "$WARM_ID"
cmp "$WORK/cold.json" "$WORK/warm.json" || { echo "warm result differs from cold result"; exit 1; }
COMPUTES="$(metric esteem_serve_cache_computes_total)"
[ "$COMPUTES" = "1" ] || { echo "expected exactly 1 compute, got $COMPUTES"; exit 1; }
echo "byte-identical, $COMPUTES simulation executed"

echo "== health and version =="
curl -sf "$SERVER/healthz" | grep -q '"ok"' || { echo "healthz not ok"; exit 1; }
curl -sf "$SERVER/v1/version" | grep -q '"esteem-serve"' || { echo "version endpoint broken"; exit 1; }

echo "== graceful drain =="
stop_daemon

echo "== restart over the same store =="
start_daemon
RESTART_ID="$(submit_job)"
"$WORK/esteem-client" result -server "$SERVER" -o "$WORK/restart.json" "$RESTART_ID"
cmp "$WORK/cold.json" "$WORK/restart.json" || { echo "restarted daemon served different bytes"; exit 1; }
COMPUTES="$(metric esteem_serve_cache_computes_total)"
[ "$COMPUTES" = "0" ] || { echo "restart re-ran the simulation ($COMPUTES computes)"; exit 1; }
echo "restart served from disk, 0 simulations executed"
stop_daemon

echo "== serve smoke OK =="
