//go:build verify

package sim

import "testing"

// TestInvariantsUnderAllTechniques runs every technique with the
// runtime self-checks compiled in; any heap, occupancy or accounting
// violation panics inside Run. This test only exists under the
// `verify` build tag (make verify / scripts/verify.sh).
func TestInvariantsUnderAllTechniques(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("verify tag set but invariants disabled")
	}
	techs := []Technique{Baseline, RPV, RPD, Esteem, EsteemAllLineRefresh, ECCExtended, SmartRefresh}
	for _, tech := range techs {
		t.Run(tech.String(), func(t *testing.T) {
			cfg := DefaultConfig(1)
			cfg.Technique = tech
			cfg.WarmupInstr = 100_000
			cfg.MeasureInstr = 400_000
			cfg.IntervalCycles = 100_000
			if _, err := Run(cfg, []string{"gcc"}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInvariantsMultiCore exercises the scheduler heap checks with a
// real multi-core interleaving.
func TestInvariantsMultiCore(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.WarmupInstr = 50_000
	cfg.MeasureInstr = 200_000
	cfg.IntervalCycles = 100_000
	if _, err := Run(cfg, []string{"gcc", "mcf"}); err != nil {
		t.Fatal(err)
	}
}
