package sim

import (
	"strings"
	"testing"
)

// TestConfigValidateErrorPaths covers every rejection branch of
// Config.Validate with the offending field named in the error.
func TestConfigValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		errPart string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, "cores"},
		{"negative cores", func(c *Config) { c.Cores = -1 }, "cores"},
		{"zero measure", func(c *Config) { c.MeasureInstr = 0 }, "MeasureInstr"},
		{"zero interval", func(c *Config) { c.IntervalCycles = 0 }, "IntervalCycles"},
		{"no retention source", func(c *Config) { c.RetentionMicros = 0; c.TemperatureC = 0 }, "retention"},
		{"negative retention", func(c *Config) { c.RetentionMicros = -1; c.TemperatureC = 0 }, "retention"},
		{"negative sigma", func(c *Config) { c.RetentionSigma = -0.5 }, "sigma"},
		{"zero frequency", func(c *Config) { c.FreqHz = 0 }, "frequency"},
		{"negative frequency", func(c *Config) { c.FreqHz = -1e9 }, "frequency"},
		{"technique below range", func(c *Config) { c.Technique = Technique(-1) }, "technique"},
		{"technique above range", func(c *Config) { c.Technique = maxTechnique + 1 }, "technique"},
		{"negative ECC factor", func(c *Config) { c.ECCRetentionFactor = -2 }, "ECC"},
		{"negative ECC overhead", func(c *Config) { c.ECCDynOverheadFrac = -0.1 }, "ECC"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig(1)
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", c)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestConfigValidateAcceptsAlternatives: configurations reachable only
// through the non-default knobs must pass — temperature-derived
// retention (with and without process variation) and every technique.
func TestConfigValidateAcceptsAlternatives(t *testing.T) {
	temp := DefaultConfig(1)
	temp.RetentionMicros = 0
	temp.TemperatureC = 85
	if err := temp.Validate(); err != nil {
		t.Fatalf("temperature-derived retention rejected: %v", err)
	}
	temp.RetentionSigma = 0.25
	if err := temp.Validate(); err != nil {
		t.Fatalf("retention sigma rejected: %v", err)
	}
	for tech := Baseline; tech <= maxTechnique; tech++ {
		c := DefaultConfig(1)
		c.Technique = tech
		if err := c.Validate(); err != nil {
			t.Fatalf("technique %v rejected: %v", tech, err)
		}
	}
}
