package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCheckpointRoundTrip drives the checkpoint subsystem over
// fuzzer-chosen configurations: run a short horizon while saving
// checkpoints, then extend to a longer horizon both cold and by
// resuming from the deepest usable checkpoint, and require the two
// paths to agree exactly — the same Result and, afterwards, the same
// serialised state bytes.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(0), uint64(1), uint16(2), uint16(3), uint16(7), false)   // esteem, gcc
	f.Add(uint8(0), uint8(1), uint64(7), uint16(1), uint16(2), uint16(5), true)    // baseline, mcf
	f.Add(uint8(1), uint8(2), uint64(42), uint16(3), uint16(4), uint16(9), false)  // rpv, omnetpp
	f.Add(uint8(2), uint8(3), uint64(9), uint16(2), uint16(2), uint16(6), true)    // rpd, libquantum
	f.Add(uint8(7), uint8(4), uint64(3), uint16(1), uint16(5), uint16(11), false)  // smart-refresh, h264ref
	f.Add(uint8(8), uint8(0), uint64(1000), uint16(4), uint16(3), uint16(8), true) // ecc, gcc

	benches := []string{"gcc", "mcf", "omnetpp", "libquantum", "h264ref"}

	f.Fuzz(func(t *testing.T, techB, benchB uint8, seed uint64, warmU, shortU, longU uint16, logIntervals bool) {
		tech := Technique(int(techB) % (int(maxTechnique) + 1))
		bench := benches[int(benchB)%len(benches)]
		// Budgets in units of 25k instructions, bounded so one fuzz
		// case stays in the low milliseconds.
		warm := 25_000 * (1 + uint64(warmU)%4)    // 25k..100k
		shortM := 25_000 * (1 + uint64(shortU)%6) // 25k..150k
		longM := shortM + 25_000*(1+uint64(longU)%8)

		cfg := DefaultConfig(1)
		cfg.Technique = tech
		cfg.Seed = seed
		cfg.WarmupInstr = warm
		cfg.MeasureInstr = shortM
		cfg.IntervalCycles = 50_000
		cfg.LogIntervals = logIntervals
		long := cfg
		long.MeasureInstr = longM
		bm := []string{bench}

		// Short run, saving every checkpoint.
		s1, err := New(cfg, bm)
		if err != nil {
			t.Fatal(err)
		}
		type saved struct {
			info CheckpointInfo
			data []byte
		}
		var ckpts []saved
		s1.SetCheckpointHook(func(info CheckpointInfo) {
			b, err := s1.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint at seq %d: %v", info.Seq, err)
			}
			ckpts = append(ckpts, saved{info, b})
		})
		if _, err := s1.Run(); err != nil {
			t.Fatal(err)
		}
		if len(ckpts) == 0 {
			t.Fatal("no checkpoints saved")
		}

		// Cold long run.
		s2, err := New(long, bm)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := s2.Run()
		if err != nil {
			t.Fatal(err)
		}
		coldState, err := s2.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}

		// Resume from the deepest usable checkpoint.
		best := -1
		for i, c := range ckpts {
			if c.info.MaxMeasured < long.MeasureInstr {
				best = i
			}
		}
		if best < 0 {
			t.Fatal("no usable checkpoint (long horizon should exceed the short one)")
		}
		s3, err := New(long, bm)
		if err != nil {
			t.Fatal(err)
		}
		if err := s3.RestoreCheckpoint(ckpts[best].data); err != nil {
			t.Fatalf("restore seq %d: %v", ckpts[best].info.Seq, err)
		}
		got, err := s3.ResumeRun()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, cold) {
			t.Fatalf("technique %v bench %s: resumed result differs from cold run (seq %d)", tech, bench, ckpts[best].info.Seq)
		}
		// The end-of-run serialised state must match byte for byte —
		// the strongest statement that resume reconstructed the whole
		// system, not just the reported aggregates.
		gotState, err := s3.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotState, coldState) {
			t.Fatalf("technique %v bench %s: final serialised state differs after resume", tech, bench)
		}
	})
}
