// Prefix checkpoints: the store's second kind of content. Alongside
// finished run artifacts (keyed by the full configuration including
// the measured-instruction horizon), the store holds mid-run simulator
// checkpoints keyed by everything EXCEPT the horizon — so a job that
// re-submits the same configuration with a longer horizon can resume
// from the longest stored prefix instead of re-simulating it.
//
// Layout per base key (one simulation unit modulo MeasureInstr):
//
//   - an index artifact (<base>.ckpt.json, canonical JSON) listing the
//     stored checkpoints' metadata, merged on every write so
//     concurrent jobs and successive horizons accumulate rather than
//     clobber;
//   - one opaque blob per checkpoint (<base>.ckpt.<seq>), written
//     blob-before-index so an index entry never references a missing
//     blob.
//
// The store does not interpret blob contents; the runner packages the
// simulator state together with the telemetry prefix (see
// internal/runner's envelope) and validates everything on restore.
package castore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// CheckpointSchemaVersion is folded into every checkpoint base key and
// index artifact; bumping it orphans old checkpoints instead of
// feeding an incompatible layout to the restore path.
// Version 2 tracks the sim checkpoint layout gaining the technology
// name and write-hit/wear state.
const CheckpointSchemaVersion = 2

// ckptKeyMaterial is the canonical description of a checkpoint
// lineage. It deliberately mirrors keyMaterial but zeroes the
// measured-instruction horizon (checkpoints taken at a boundary are
// horizon-independent by construction — see internal/sim) and tags the
// material so a checkpoint base key can never collide with an artifact
// key.
type ckptKeyMaterial struct {
	Kind       string     `json:"kind"`
	KeySchema  int        `json:"key_schema"`
	CkptSchema int        `json:"ckpt_schema"`
	Config     sim.Config `json:"config"`
	Workload   []string   `json:"workload"`
}

// CheckpointBaseKey returns the content address of a checkpoint
// lineage: cfg with MeasureInstr erased, plus the workload. Two
// configurations that differ only in their horizon share a base key —
// that sharing is the whole point.
func CheckpointBaseKey(cfg sim.Config, workload []string) (string, error) {
	cfg.MeasureInstr = 0
	b, err := obs.MarshalCanonical(ckptKeyMaterial{
		Kind:       "checkpoint-prefix",
		KeySchema:  KeySchemaVersion,
		CkptSchema: CheckpointSchemaVersion,
		Config:     cfg,
		Workload:   workload,
	})
	if err != nil {
		return "", fmt.Errorf("castore: encoding checkpoint key material: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CheckpointMeta describes one stored checkpoint. Seq/Frontier/
// Min/MaxMeasured mirror the simulator's CheckpointInfo; Key is the
// blob's address within the store (assigned by PutCheckpoint).
type CheckpointMeta struct {
	Seq         int    `json:"seq"`
	Frontier    uint64 `json:"frontier"`
	MinMeasured uint64 `json:"min_measured"`
	MaxMeasured uint64 `json:"max_measured"`
	Key         string `json:"key"`
}

// checkpointIndex is the on-disk index artifact.
type checkpointIndex struct {
	Schema  int              `json:"schema"`
	Entries []CheckpointMeta `json:"entries"`
}

// blobKeyPattern is the shape of a checkpoint blob key: a base key
// plus a ".ckpt.<seq>" suffix. Index entries are validated against it
// before any filesystem access (the index is read back from disk).
var blobKeyPattern = regexp.MustCompile(`^[0-9a-f]{64}\.ckpt\.[0-9]+$`)

// ckptIndexPath returns the disk path of base's index artifact.
func (s *Store) ckptIndexPath(base string) string {
	return filepath.Join(s.dir, base+".ckpt.json")
}

// blobKey returns the storage key of base's checkpoint number seq.
func blobKey(base string, seq int) string {
	return fmt.Sprintf("%s.ckpt.%d", base, seq)
}

// PutCheckpoint stores one checkpoint blob under base and merges its
// metadata into base's index. Re-putting a sequence number overwrites
// it (the bytes are identical by construction — checkpoints are
// horizon-independent — so last-write-wins is safe). Caller must hold
// no store locks.
func (s *Store) PutCheckpoint(base string, meta CheckpointMeta, data []byte) error {
	if !ValidKey(base) {
		return fmt.Errorf("castore: invalid checkpoint base key %q", base)
	}
	if meta.Seq < 0 {
		return fmt.Errorf("castore: negative checkpoint sequence %d", meta.Seq)
	}
	meta.Key = blobKey(base, meta.Seq)
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.dir == "" {
		s.ckptBlobs[meta.Key] = append([]byte(nil), data...)
		s.ckptIdx[base] = mergeCheckpointMeta(s.ckptIdx[base], meta)
		return nil
	}
	// Blob before index: a crash between the writes leaves an orphan
	// blob (harmless), never a dangling index entry.
	if err := s.writeAtomic(meta.Key, filepath.Join(s.dir, meta.Key), data); err != nil {
		return err
	}
	entries, err := s.readCheckpointIndex(base)
	if err != nil {
		return err
	}
	idx := checkpointIndex{Schema: CheckpointSchemaVersion, Entries: mergeCheckpointMeta(entries, meta)}
	b, err := obs.MarshalCanonical(idx)
	if err != nil {
		return fmt.Errorf("castore: encoding checkpoint index: %w", err)
	}
	return s.writeAtomic(base+".ckpt.json", s.ckptIndexPath(base), b)
}

// mergeCheckpointMeta inserts meta into entries, replacing any entry
// with the same sequence number, and keeps the list sorted by Seq.
func mergeCheckpointMeta(entries []CheckpointMeta, meta CheckpointMeta) []CheckpointMeta {
	out := entries[:0]
	for _, e := range entries {
		if e.Seq != meta.Seq {
			out = append(out, e)
		}
	}
	out = append(out, meta)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// readCheckpointIndex loads base's index entries from disk (missing
// file = empty lineage). Caller must hold ckptMu.
func (s *Store) readCheckpointIndex(base string) ([]CheckpointMeta, error) {
	b, err := os.ReadFile(s.ckptIndexPath(base))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("castore: reading checkpoint index for %s: %w", base, err)
	}
	var idx checkpointIndex
	if err := json.Unmarshal(b, &idx); err != nil {
		return nil, fmt.Errorf("castore: checkpoint index for %s: %w", base, err)
	}
	if idx.Schema != CheckpointSchemaVersion {
		// An index from another schema is an empty lineage, not an
		// error: new writes will replace it wholesale.
		return nil, nil
	}
	return idx.Entries, nil
}

// Checkpoints returns the stored metadata for base, sorted by Seq.
func (s *Store) Checkpoints(base string) ([]CheckpointMeta, error) {
	if !ValidKey(base) {
		return nil, fmt.Errorf("castore: invalid checkpoint base key %q", base)
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.dir == "" {
		return append([]CheckpointMeta(nil), s.ckptIdx[base]...), nil
	}
	return s.readCheckpointIndex(base)
}

// BestCheckpoint returns the deepest stored checkpoint of base that is
// usable for the given measured-instruction horizon: the entry with
// the largest Seq whose MaxMeasured is strictly below horizon (a core
// whose measurement window already closed cannot be resumed — the
// simulator enforces the same rule on restore). ok is false when the
// lineage holds no usable checkpoint; err is reserved for real I/O or
// decode failures.
func (s *Store) BestCheckpoint(base string, horizon uint64) (meta CheckpointMeta, data []byte, ok bool, err error) {
	entries, err := s.Checkpoints(base)
	if err != nil {
		return CheckpointMeta{}, nil, false, err
	}
	best := -1
	for i, e := range entries {
		if e.MaxMeasured < horizon && (best < 0 || e.Seq > entries[best].Seq) {
			best = i
		}
	}
	if best < 0 {
		s.prefixMisses.Add(1)
		return CheckpointMeta{}, nil, false, nil
	}
	meta = entries[best]
	if !blobKeyPattern.MatchString(meta.Key) {
		return CheckpointMeta{}, nil, false, fmt.Errorf("castore: malformed checkpoint blob key %q", meta.Key)
	}
	if s.dir == "" {
		s.ckptMu.Lock()
		data = s.ckptBlobs[meta.Key]
		s.ckptMu.Unlock()
		if data == nil {
			s.prefixMisses.Add(1)
			return CheckpointMeta{}, nil, false, nil
		}
	} else {
		data, err = os.ReadFile(filepath.Join(s.dir, meta.Key))
		if err != nil {
			if os.IsNotExist(err) {
				// Index entry without its blob (interrupted cleanup):
				// treat as a miss rather than failing the job.
				s.prefixMisses.Add(1)
				return CheckpointMeta{}, nil, false, nil
			}
			return CheckpointMeta{}, nil, false, fmt.Errorf("castore: reading checkpoint %s: %w", meta.Key, err)
		}
	}
	s.prefixHits.Add(1)
	s.prefixSaved.Add(meta.MinMeasured)
	return meta, data, true, nil
}
