package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hardens the trace-file parser against arbitrary
// input: it must never panic, and any trace it accepts must
// re-serialize to an equivalent stream.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	p, _ := ProfileByName("gcc")
	g := MustNewGenerator(p, 1)
	if err := WriteTrace(&buf, Record(g, 50), 2); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("ESTEEMT1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		refs, mlp, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must round-trip.
		var out bytes.Buffer
		if err := WriteTrace(&out, refs, mlp); err != nil {
			// Only negative gaps are rejected by WriteTrace, and
			// ReadTrace can never produce them (uint32 gaps).
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		refs2, mlp2, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("re-serialized trace rejected: %v", err)
		}
		if len(refs2) != len(refs) || mlp2 != mlp {
			t.Fatalf("round trip changed shape: %d/%v vs %d/%v", len(refs2), mlp2, len(refs), mlp)
		}
	})
}

// FuzzGeneratorProfile hardens profile validation: any profile that
// Validate accepts must produce a generator whose stream does not
// panic.
func FuzzGeneratorProfile(f *testing.F) {
	f.Add(0.3, 0.2, 100, 1.0, 0.1, 0.05, 64, 2.0, uint64(1))
	f.Fuzz(func(t *testing.T, memOp, write float64, hotKB int, zipfS, stream, pointer float64, ptrKB int, mlp float64, seed uint64) {
		p := Profile{
			Name: "fuzz", MemOpFrac: memOp, WriteFrac: write,
			HotKB: hotKB, ZipfS: zipfS,
			StreamFrac: stream, PointerFrac: pointer, PointerKB: ptrKB,
			MLP: mlp,
		}
		if p.Validate() != nil {
			return
		}
		// Bound the work: huge hot regions build huge Zipf tables.
		if hotKB > 1<<20 {
			return
		}
		g, err := NewGenerator(p, seed)
		if err != nil {
			t.Fatalf("validated profile rejected by NewGenerator: %v", err)
		}
		for i := 0; i < 100; i++ {
			r := g.Next()
			if r.Gap < 0 {
				t.Fatal("negative gap")
			}
		}
	})
}
