// Package edram models the refresh behaviour of an embedded-DRAM
// (gain cell) cache, per Section 6.1 of the ESTEEM paper:
//
//   - every cell must be refreshed within its retention period
//     (40–50 µs at the modelled temperatures, i.e. 80–100 k cycles at
//     2 GHz — about a thousand times shorter than commodity DRAM);
//   - the cache is banked (4 banks in the paper) and each bank has
//     dedicated, pipelined refresh logic that refreshes one line per
//     cycle;
//   - while a bank is refreshing, demand accesses to it stall, which
//     is the paper's refresh-induced performance loss.
//
// The Engine schedules refresh events lazily as simulated time
// advances; a Policy decides how many lines each event refreshes in
// each bank (all frames for the baseline, valid lines only for
// ESTEEM, per-phase subsets for the Refrint policies in package
// refrint).
package edram

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Clock is the simulated cycle counter shared between the simulator
// and refresh policies (policies need the current cycle to compute
// the retention phase of a touch).
type Clock struct {
	Cycle uint64
}

// Params configures the refresh engine.
type Params struct {
	// RetentionCycles is the retention period in core cycles
	// (e.g. 100000 for 50 µs at 2 GHz).
	RetentionCycles uint64
	// Banks is the number of independently refreshable banks.
	Banks int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.RetentionCycles == 0 {
		return fmt.Errorf("edram: retention period must be positive")
	}
	if p.Banks <= 0 {
		return fmt.Errorf("edram: banks must be >= 1")
	}
	return nil
}

// RetentionCyclesFor converts a retention period in microseconds and
// a core frequency in GHz to cycles.
func RetentionCyclesFor(retentionMicros, freqGHz float64) uint64 {
	return uint64(retentionMicros * 1000 * freqGHz)
}

// Policy decides what each refresh event refreshes.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// EventsPerWindow is the number of refresh events per retention
	// window: 1 for periodic policies, the phase count for polyphase
	// (Refrint) policies.
	EventsPerWindow() int
	// RefreshEvent performs the refresh work for the given bank at
	// the given event index within the window and returns the number
	// of lines refreshed. It may mutate state (e.g. Refrint RPD
	// invalidates clean lines instead of refreshing them).
	RefreshEvent(bank, event int) int
}

// PolicyTelemetry is implemented by refresh policies that maintain
// per-interval counters beyond the line counts the engine already
// sees — refreshes skipped because a line was recently touched
// (Smart-Refresh), clean lines eagerly invalidated instead of
// refreshed (Refrint RPD). The simulator's telemetry layer reads and
// resets these at every interval boundary when an observer is
// attached.
type PolicyTelemetry interface {
	// IntervalPolicyStats returns the counters accumulated since the
	// last ResetPolicyStats.
	IntervalPolicyStats() obs.PolicyStats
	// ResetPolicyStats clears the interval counters.
	ResetPolicyStats()
}

// Engine schedules refresh events and tracks the resulting bank
// occupancy and refresh counts.
type Engine struct {
	p      Params
	policy Policy

	eventSpacing uint64 // cycles between refresh events
	nextEvent    uint64 // cycle of the next pending event
	eventIdx     int    // index of the next event within its window

	// busyUntil[b] is the first cycle at which bank b has no pending
	// refresh work.
	busyUntil []uint64

	totalRefreshed     uint64
	intervalRefreshed  uint64
	totalBusyCycles    uint64
	intervalBusyCycles uint64
	events             uint64
}

// NewEngine builds a refresh engine. The first refresh event fires at
// the end of the first sub-window (cycle RetentionCycles /
// EventsPerWindow), then every sub-window thereafter.
func NewEngine(p Params, policy Policy) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := policy.EventsPerWindow()
	if ev <= 0 {
		return nil, fmt.Errorf("edram: policy %q has %d events per window", policy.Name(), ev)
	}
	if uint64(ev) > p.RetentionCycles {
		return nil, fmt.Errorf("edram: %d events do not fit in %d retention cycles", ev, p.RetentionCycles)
	}
	spacing := p.RetentionCycles / uint64(ev)
	return &Engine{
		p:            p,
		policy:       policy,
		eventSpacing: spacing,
		nextEvent:    spacing,
		busyUntil:    make([]uint64, p.Banks),
	}, nil
}

// Policy returns the engine's refresh policy.
func (e *Engine) Policy() Policy { return e.policy }

// AdvanceTo processes every refresh event scheduled at or before
// cycle. It is idempotent for non-increasing cycles.
func (e *Engine) AdvanceTo(cycle uint64) {
	for e.nextEvent <= cycle {
		start := e.nextEvent
		for b := 0; b < e.p.Banks; b++ {
			n := uint64(e.policy.RefreshEvent(b, e.eventIdx))
			if n == 0 {
				continue
			}
			if e.busyUntil[b] < start {
				e.busyUntil[b] = start
			}
			e.busyUntil[b] += n
			e.totalRefreshed += n
			e.intervalRefreshed += n
			e.totalBusyCycles += n
			e.intervalBusyCycles += n
		}
		e.events++
		e.eventIdx = (e.eventIdx + 1) % e.policy.EventsPerWindow()
		e.nextEvent += e.eventSpacing
	}
}

// AccessDelay returns how many cycles a demand access to bank at the
// given cycle must wait for in-progress refresh work. It advances the
// engine to cycle first.
func (e *Engine) AccessDelay(bank int, cycle uint64) uint64 {
	e.AdvanceTo(cycle)
	if e.busyUntil[bank] > cycle {
		return e.busyUntil[bank] - cycle
	}
	return 0
}

// TotalRefreshed returns the number of line refreshes performed since
// construction.
func (e *Engine) TotalRefreshed() uint64 { return e.totalRefreshed }

// IntervalRefreshed returns the refreshes since the last
// ResetInterval; this is N_R in the paper's energy model.
func (e *Engine) IntervalRefreshed() uint64 { return e.intervalRefreshed }

// ResetInterval clears the interval refresh and busy counters.
func (e *Engine) ResetInterval() {
	e.intervalRefreshed = 0
	e.intervalBusyCycles = 0
}

// TotalBusyCycles returns the cumulative bank-cycles spent refreshing.
func (e *Engine) TotalBusyCycles() uint64 { return e.totalBusyCycles }

// IntervalBusyCycles returns the bank-cycles spent refreshing since
// the last ResetInterval.
func (e *Engine) IntervalBusyCycles() uint64 { return e.intervalBusyCycles }

// Events returns the number of refresh events processed.
func (e *Engine) Events() uint64 { return e.events }

// RefreshAll is the paper's baseline policy: every line frame in the
// cache is refreshed once per retention window, valid or not.
type RefreshAll struct {
	c *cache.Cache
}

// NewRefreshAll builds the baseline policy over c.
func NewRefreshAll(c *cache.Cache) *RefreshAll { return &RefreshAll{c: c} }

func (p *RefreshAll) Name() string         { return "baseline" }
func (p *RefreshAll) EventsPerWindow() int { return 1 }
func (p *RefreshAll) RefreshEvent(bank, event int) int {
	return p.c.LinesPerBank(bank)
}

// ValidOnly refreshes only the currently valid lines, once per
// retention window. ESTEEM uses it for the active portion of the
// cache: powered-off ways hold no valid lines, so they are skipped
// automatically, and within the active portion only valid blocks are
// refreshed (Section 3.1).
type ValidOnly struct {
	c *cache.Cache
}

// NewValidOnly builds the valid-lines-only policy over c.
func NewValidOnly(c *cache.Cache) *ValidOnly { return &ValidOnly{c: c} }

func (p *ValidOnly) Name() string         { return "valid-only" }
func (p *ValidOnly) EventsPerWindow() int { return 1 }
func (p *ValidOnly) RefreshEvent(bank, event int) int {
	return p.c.ValidByBank(bank)
}

// None performs no refreshes. It is not a realizable eDRAM policy
// (data would decay); it serves as an idealized lower bound in
// ablation experiments.
type None struct{}

func (None) Name() string                     { return "no-refresh" }
func (None) EventsPerWindow() int             { return 1 }
func (None) RefreshEvent(bank, event int) int { return 0 }
