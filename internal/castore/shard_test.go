package castore

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rendezvous"
)

// shardNode is one test cluster node: a local store served over the
// real shard transport.
type shardNode struct {
	store *Store
	srv   *httptest.Server
}

func newShardNode(t *testing.T) *shardNode {
	t.Helper()
	store, err := Open(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	RegisterShard(mux, store, "")
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &shardNode{store: store, srv: srv}
}

// testCluster builds n nodes with a shared mutable member list.
type testCluster struct {
	nodes map[string]*shardNode
	mu    sync.Mutex
	live  []string
}

func newTestCluster(t *testing.T, n int) *testCluster {
	c := &testCluster{nodes: map[string]*shardNode{}}
	for i := 0; i < n; i++ {
		node := newShardNode(t)
		c.nodes[node.srv.URL] = node
		c.live = append(c.live, node.srv.URL)
	}
	return c
}

func (c *testCluster) members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.live...)
}

func (c *testCluster) kill(url string) {
	c.mu.Lock()
	var out []string
	for _, m := range c.live {
		if m != url {
			out = append(out, m)
		}
	}
	c.live = out
	c.mu.Unlock()
	c.nodes[url].srv.Close()
}

func (c *testCluster) sharded(url string) *Sharded {
	return NewSharded(c.nodes[url].store, url, c.members, 2, nil)
}

func shardKey(i int) string {
	return fmt.Sprintf("%064x", uint64(i)*0x9E3779B97F4A7C15+7)
}

// TestShardedPutReplicates: a put lands on both owners and is readable
// from every node.
func TestShardedPutReplicates(t *testing.T) {
	c := newTestCluster(t, 3)
	writer := c.sharded(c.members()[0])
	for i := 0; i < 20; i++ {
		key := shardKey(i)
		data := []byte(fmt.Sprintf(`{"artifact":%d}`, i))
		if err := writer.Put(key, data); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		owners := rendezvous.Owners(key, c.members(), 2)
		for _, o := range owners {
			got, ok, err := c.nodes[o].store.Get(key)
			if err != nil || !ok {
				t.Fatalf("key %d: owner %s does not hold the artifact (ok=%v err=%v)", i, o, ok, err)
			}
			if string(got) != string(data) {
				t.Fatalf("key %d: owner %s holds wrong bytes", i, o)
			}
		}
		for _, m := range c.members() {
			got, ok, err := c.sharded(m).Get(key)
			if err != nil || !ok {
				t.Fatalf("key %d: member %s cannot read (ok=%v err=%v)", i, m, ok, err)
			}
			if string(got) != string(data) {
				t.Fatalf("key %d: member %s read wrong bytes", i, m)
			}
		}
	}
}

// TestShardedSurvivesNodeDeath: with replication factor 2, every
// artifact remains readable after any single node dies, and reads
// repair replication onto the new owner set.
func TestShardedSurvivesNodeDeath(t *testing.T) {
	c := newTestCluster(t, 3)
	members := c.members()
	writer := c.sharded(members[0])
	const n = 30
	for i := 0; i < n; i++ {
		if err := writer.Put(shardKey(i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	victim := members[2]
	c.kill(victim)
	// Read through a surviving node that was not the writer.
	reader := c.sharded(members[1])
	for i := 0; i < n; i++ {
		key := shardKey(i)
		data, ok, err := reader.Get(key)
		if err != nil || !ok {
			t.Fatalf("key %d unreadable after killing %s (ok=%v err=%v)", i, victim, ok, err)
		}
		if want := fmt.Sprintf(`{"v":%d}`, i); string(data) != want {
			t.Fatalf("key %d: wrong bytes after node death", i)
		}
		// After the read, the new owner set must hold the artifact
		// (read-through repair).
		for _, o := range rendezvous.Owners(key, c.members(), 2) {
			if _, ok, _ := c.nodes[o].store.Get(key); !ok {
				t.Fatalf("key %d: owner %s still missing the artifact after read-repair", i, o)
			}
		}
	}
	st := reader.Stats()
	if st.RemoteHits == 0 && st.Repairs == 0 {
		t.Fatalf("expected remote traffic after node death, got %+v", st)
	}
}

// TestShardedGetOrComputeCoalesces: concurrent GetOrCompute on one
// node computes once; a second node then reads the result without
// computing at all.
func TestShardedGetOrComputeCoalesces(t *testing.T) {
	c := newTestCluster(t, 3)
	members := c.members()
	a := c.sharded(members[0])
	key := shardKey(99)
	var computes atomic.Int64
	compute := func(context.Context) ([]byte, error) {
		computes.Add(1)
		return []byte(`{"computed":true}`), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := a.GetOrCompute(context.Background(), key, compute); err != nil {
				t.Errorf("GetOrCompute: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("single-node coalescing broke: %d computes", got)
	}
	b := c.sharded(members[1])
	data, cached, err := b.GetOrCompute(context.Background(), key, compute)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || computes.Load() != 1 {
		t.Fatalf("second node recomputed (cached=%v computes=%d)", cached, computes.Load())
	}
	if string(data) != `{"computed":true}` {
		t.Fatalf("second node read wrong bytes: %s", data)
	}
}

// TestShardedPutFailsWithNoReplica: when the node is not an owner and
// every owner is unreachable, Put must fail so the task re-runs
// instead of completing with an unreachable artifact.
func TestShardedPutFailsWithNoReplica(t *testing.T) {
	c := newTestCluster(t, 3)
	members := c.members()
	// Find a key NOT owned by members[0] so self cannot count as an
	// authoritative replica.
	var key string
	for i := 0; ; i++ {
		k := shardKey(i)
		owned := false
		for _, o := range rendezvous.Owners(k, members, 2) {
			if o == members[0] {
				owned = true
			}
		}
		if !owned {
			key = k
			break
		}
	}
	writer := c.sharded(members[0])
	c.kill(members[1])
	c.kill(members[2])
	// The member view still lists the dead nodes (stale view): puts to
	// them fail, self is not an owner, so the write must error.
	stale := func() []string { return members }
	writerStale := NewSharded(c.nodes[members[0]].store, members[0], stale, 2, nil)
	if err := writerStale.Put(key, []byte(`{}`)); err == nil {
		t.Fatal("Put succeeded with zero authoritative replicas")
	}
	// With a live view the write degrades to self-only membership and
	// self becomes an owner, so it succeeds.
	if err := writer.Put(key, []byte(`{}`)); err != nil {
		t.Fatalf("Put with self as sole member failed: %v", err)
	}
}

// TestShardedCheckpointsStayLocal: checkpoint blobs never cross the
// wire; they land in the node-local store only.
func TestShardedCheckpointsStayLocal(t *testing.T) {
	c := newTestCluster(t, 2)
	members := c.members()
	a := c.sharded(members[0])
	base := shardKey(5)
	if err := a.PutCheckpoint(base, CheckpointMeta{Seq: 0, MaxMeasured: 100}, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := a.BestCheckpoint(base, 1000); err != nil || !ok {
		t.Fatalf("local checkpoint not found (ok=%v err=%v)", ok, err)
	}
	b := c.sharded(members[1])
	if _, _, ok, _ := b.BestCheckpoint(base, 1000); ok {
		t.Fatal("checkpoint leaked to a peer node")
	}
}

// TestRegisterShardRejectsBadKeys: the transport validates key shape
// before touching the filesystem.
func TestRegisterShardRejectsBadKeys(t *testing.T) {
	node := newShardNode(t)
	resp, err := http.Get(node.srv.URL + ShardPathPrefix + "not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: got %s, want 400", resp.Status)
	}
	resp, err = http.Get(node.srv.URL + ShardPathPrefix + shardKey(1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing key: got %s, want 404", resp.Status)
	}
}
