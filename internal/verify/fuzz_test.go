package verify

import (
	"testing"

	"repro/internal/cache"
)

// fuzzGeometry picks a cache shape from the differential matrix so the
// fuzzer explores every geometry class from one byte of input.
func fuzzGeometry(sel byte) int { return int(sel) % len(Geometries) }

// FuzzCacheAccess decodes arbitrary bytes into an operation schedule
// and replays it through the production cache and the oracle with full
// state comparison after every op. The first byte selects a geometry;
// the rest is the schedule.
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte("0read-write-probe-seed-corpus!!!"))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 1, 44, 0, 0, 0, 2, 44, 0, 0, 0})
	f.Add([]byte{4, 3, 7, 0, 0, 0, 3, 1, 1, 0, 0, 7, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 || len(data) > 4096 {
			return
		}
		p := Geometries[fuzzGeometry(data[0])]
		d, err := NewCacheDiff(p)
		if err != nil {
			t.Fatal(err)
		}
		ops := DecodeOps(data[1:], p, 0)
		if err := d.Replay(ops); err != nil {
			t.Fatalf("geometry %s: %v", p.Name, err)
		}
	})
}

// FuzzReconfigure stresses the selective-way reconfiguration path: the
// schedule alternates fuzzer-chosen SetActiveWays calls with accesses,
// so shrink-flush, leader exemption and grow transitions are hammered
// against the oracle far more densely than RandomOps' 6% rate.
func FuzzReconfigure(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte("shrink-then-grow-then-shrink-again"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 4096 {
			return
		}
		p := Geometries[fuzzGeometry(data[0])]
		d, err := NewCacheDiff(p)
		if err != nil {
			t.Fatal(err)
		}
		numSets := p.SizeBytes / (p.LineBytes * p.Assoc)
		lineSpan := uint64(2 * numSets * p.Assoc)
		data = data[1:]
		for i := 0; i+2 < len(data); i += 3 {
			a, b, c := data[i], data[i+1], data[i+2]
			recfg := Op{
				Kind:   OpReconfigure,
				Module: int(a) % p.Modules,
				Ways:   1 + int(b)%p.Assoc,
			}
			if err := d.Apply(recfg); err != nil {
				t.Fatal(err)
			}
			if err := d.CheckState(); err != nil {
				t.Fatalf("after reconfigure m=%d n=%d: %v", recfg.Module, recfg.Ways, err)
			}
			acc := Op{
				Kind: OpWrite,
				Addr: cache.Addr(uint64(c) % lineSpan * uint64(p.LineBytes)),
			}
			if c%2 == 0 {
				acc.Kind = OpRead
			}
			if err := d.Apply(acc); err != nil {
				t.Fatal(err)
			}
			if err := d.CheckState(); err != nil {
				t.Fatalf("after access %#x: %v", uint64(acc.Addr), err)
			}
		}
	})
}

// FuzzWearLevel replays fuzzer schedules through wear-tracked caches
// with a fuzzer-chosen intra-set wear-levelling period, differentially
// against the oracle: CheckState compares every per-frame wear counter
// and the swap count after every operation, and Replay's state checks
// verify wear conservation (sum of wear == fills + write hits).
func FuzzWearLevel(f *testing.F) {
	f.Add([]byte("3wear-level-seed-corpus-entry!!!"))
	f.Add([]byte{0, 1, 1, 44, 0, 0, 0, 1, 45, 0, 0, 0, 1, 44, 0, 0, 0})
	f.Add([]byte{7, 15, 3, 1, 1, 0, 0, 1, 9, 9, 9, 9, 7, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 4096 {
			return
		}
		p := Geometries[fuzzGeometry(data[0])]
		p.TrackWear = true
		// Period 1..16 levels densely; 0 (data[1] == 255) covers plain
		// wear tracking without remapping.
		if data[1] != 255 {
			p.WearLevelPeriod = 1 + int(data[1])%16
		}
		d, err := NewCacheDiff(p)
		if err != nil {
			t.Fatal(err)
		}
		ops := DecodeOps(data[2:], p, 0)
		if err := d.Replay(ops); err != nil {
			t.Fatalf("geometry %s period %d: %v", p.Name, p.WearLevelPeriod, err)
		}
	})
}

// FuzzRefreshWindow replays fuzzer schedules through the full
// cache+policy+engine stacks for a fuzzer-chosen refresh policy, phase
// count and retention window.
func FuzzRefreshWindow(f *testing.F) {
	f.Add([]byte("2refresh-window-seed-corpus-entry"))
	f.Add([]byte{0, 1, 2, 7, 1, 2, 3, 4, 7, 255, 255, 0, 0, 0, 0})
	f.Add([]byte{4, 3, 5, 7, 0, 0, 0, 0, 7, 1, 1, 1, 1, 0, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 2048 {
			return
		}
		policy := RefreshPolicies[int(data[0])%len(RefreshPolicies)]
		p := Geometries[fuzzGeometry(data[1])]
		phases := 1 + int(data[2])%8
		retention := uint64(phases) * (50 + 97*uint64(data[2]))
		d, err := NewRefreshDiff(p, policy, phases, retention)
		if err != nil {
			t.Fatal(err)
		}
		ops := DecodeOps(data[3:], p, retention)
		if err := d.Replay(ops); err != nil {
			t.Fatalf("%s/%s phases=%d retention=%d: %v", p.Name, policy, phases, retention, err)
		}
	})
}
