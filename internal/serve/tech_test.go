package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// techSpec is tinySpec with an explicit LLC technology.
func techSpec(seed uint64, technology string) string {
	return fmt.Sprintf(`{
		"config": {"MeasureInstr": 30000, "WarmupInstr": 5000, "IntervalCycles": 20000, "Seed": %d},
		"benchmarks": [["gcc"]],
		"techniques": ["esteem"],
		"technology": %q
	}`, seed, technology)
}

// TestSubmitTechnologyKeysAndCaching is the service-level contract of
// the technology field: the same workload under a different backend is
// a different simulation (distinct content address, fresh compute),
// while an explicit "edram" is the same simulation as the default
// (same key, served from cache).
func TestSubmitTechnologyKeysAndCaching(t *testing.T) {
	s := newTestServer(t, nil)

	// Default (no technology field) computes once.
	def := submit(t, s, tinySpec(1))
	if got := waitDone(t, s, def.ID); got.State != StateDone {
		t.Fatalf("default job state %s, error %q", got.State, got.Error)
	}
	if st := s.Store().Stats(); st.Computes != 1 {
		t.Fatalf("default job: stats %+v, want 1 compute", st)
	}
	if tech := def.Units[0].Technology; tech != "edram" {
		t.Fatalf("default unit technology %q, want edram", tech)
	}

	// Explicit edram spells the same key and is a cache hit.
	edram := submit(t, s, techSpec(1, "edram"))
	if edram.Units[0].Key != def.Units[0].Key {
		t.Fatalf("explicit edram key %s != default key %s", edram.Units[0].Key, def.Units[0].Key)
	}
	if got := waitDone(t, s, edram.ID); got.State != StateDone {
		t.Fatalf("edram job state %s, error %q", got.State, got.Error)
	}
	st := s.Store().Stats()
	if st.Computes != 1 {
		t.Fatalf("explicit edram recomputed: stats %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("explicit edram did not hit the cache: stats %+v", st)
	}

	// STT-RAM is a different simulation: new key, one more compute.
	sttram := submit(t, s, techSpec(1, "sttram"))
	if sttram.Units[0].Key == def.Units[0].Key {
		t.Fatalf("sttram key equals edram key %s", def.Units[0].Key)
	}
	if tech := sttram.Units[0].Technology; tech != "sttram" {
		t.Fatalf("sttram unit technology %q", tech)
	}
	if got := waitDone(t, s, sttram.ID); got.State != StateDone {
		t.Fatalf("sttram job state %s, error %q", got.State, got.Error)
	}
	if st := s.Store().Stats(); st.Computes != 2 {
		t.Fatalf("sttram job: stats %+v, want 2 computes", st)
	}

	// Resubmitting the STT-RAM job is a cache hit.
	again := submit(t, s, techSpec(1, "sttram"))
	if again.Units[0].Key != sttram.Units[0].Key {
		t.Fatalf("sttram resubmit key changed: %s vs %s", again.Units[0].Key, sttram.Units[0].Key)
	}
	if got := waitDone(t, s, again.ID); got.State != StateDone {
		t.Fatalf("sttram resubmit state %s, error %q", got.State, got.Error)
	}
	if st := s.Store().Stats(); st.Computes != 2 {
		t.Fatalf("sttram resubmit recomputed: stats %+v", st)
	}

	// ReRAM differs from both, and its result artifact carries wear.
	reram := submit(t, s, techSpec(1, "reram"))
	if k := reram.Units[0].Key; k == def.Units[0].Key || k == sttram.Units[0].Key {
		t.Fatalf("reram key %s collides", k)
	}
	if got := waitDone(t, s, reram.ID); got.State != StateDone {
		t.Fatalf("reram job state %s, error %q", got.State, got.Error)
	}
	res := do(t, s, "GET", "/v1/jobs/"+reram.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("reram result: %d %s", res.Code, res.Body)
	}
	if !strings.Contains(res.Body.String(), `"wear"`) {
		t.Fatalf("reram result artifact carries no wear summary:\n%.600s", res.Body.String())
	}
}

// TestSubmitTechnologyRejected covers the validation surface: unknown
// backends and refresh techniques on refresh-free technologies are
// both 4xx at submission time, not runtime failures.
func TestSubmitTechnologyRejected(t *testing.T) {
	s := newTestServer(t, nil)
	w := do(t, s, "POST", "/v1/jobs", techSpec(1, "mram"))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown technology: %d %s", w.Code, w.Body)
	}
	spec := strings.Replace(techSpec(1, "sttram"), `"techniques": ["esteem"]`, `"techniques": ["rpv"]`, 1)
	w = do(t, s, "POST", "/v1/jobs", spec)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("refresh technique on non-refresh technology: %d %s", w.Code, w.Body)
	}
}
