// Job state and the per-job event log backing the SSE stream.
package serve

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tracez"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Unit is one simulation of a job: a (technique, workload) pair from
// the spec's cross product, with the content address its artifact
// lives under. Keys are computed at submission time — they depend
// only on the effective configuration, never on execution.
type Unit struct {
	Label      string   `json:"label"`
	Technique  string   `json:"technique"`
	Technology string   `json:"technology,omitempty"`
	Workload   []string `json:"workload"`
	Key        string   `json:"key"`

	cfg sim.Config
}

// Job tracks one submitted sweep.
type Job struct {
	ID      string
	Spec    JobSpec
	Units   []Unit
	Created time.Time

	// TraceID is the hex form of the job's trace (for views, logs and
	// SSE events); traceID is the binary form the tracer is queried
	// with; span is the trace's root ("job") and queueSpan its
	// admission-queue child, both ended by finish at the latest.
	TraceID   string
	traceID   tracez.TraceID
	span      *tracez.Span
	queueSpan *tracez.Span
	enqueued  time.Time

	mu    sync.Mutex
	state State
	err   error

	log *eventLog
}

func newJob(id string, spec JobSpec, units []Unit, root *tracez.Span, node string) *Job {
	j := &Job{
		ID:        id,
		Spec:      spec,
		Units:     units,
		Created:   time.Now().UTC(),
		TraceID:   root.TraceID().String(),
		traceID:   root.TraceID(),
		span:      root,
		queueSpan: root.Child("queue"),
		enqueued:  time.Now(),
		state:     StateQueued,
		log:       newEventLog(root.TraceID().String(), node),
	}
	j.log.publish("state", Event{State: string(StateQueued)})
	return j
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
	j.log.publish("state", Event{State: string(s)})
}

// finish records the terminal state and closes the event log. The
// job's spans end here at the latest (End is idempotent, so the queue
// span may already be closed by the worker), before the state flips:
// a client that observes a terminal state can rely on the trace being
// fully recorded.
func (j *Job) finish(s State, err error) {
	j.queueSpan.End()
	j.span.SetAttr("state", string(s))
	if err != nil {
		j.span.SetAttr("error", err.Error())
	}
	j.span.End()
	j.mu.Lock()
	j.state = s
	j.err = err
	j.mu.Unlock()
	ev := Event{State: string(s)}
	if err != nil {
		ev.Error = err.Error()
	}
	j.log.publish("state", ev)
	j.log.close()
}

// taskEvent adapts runner task lifecycle events into the job's event
// log. It runs on sweep worker goroutines.
func (j *Job) taskEvent(ev runner.TaskEvent) {
	e := Event{
		Task:     ev.Type.String(),
		Label:    ev.Label,
		Finished: ev.Finished,
		Total:    ev.Total,
	}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	j.log.publish("task", e)
}

// jobView is the JSON shape of GET /v1/jobs/{id}.
type jobView struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Error     string `json:"error,omitempty"`
	CreatedAt string `json:"created_at"`
	TraceID   string `json:"trace_id"`
	Units     []Unit `json:"units"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
	TraceURL  string `json:"trace_url"`
	ResultURL string `json:"result_url"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	state, err := j.state, j.err
	j.mu.Unlock()
	v := jobView{
		ID:        j.ID,
		State:     state,
		CreatedAt: j.Created.Format(time.RFC3339),
		TraceID:   j.TraceID,
		Units:     j.Units,
		StatusURL: "/v1/jobs/" + j.ID,
		EventsURL: "/v1/jobs/" + j.ID + "/events",
		TraceURL:  "/v1/jobs/" + j.ID + "/trace",
		ResultURL: "/v1/jobs/" + j.ID + "/result",
	}
	if err != nil {
		v.Error = err.Error()
	}
	return v
}

// resultEnvelope is the JSON shape of GET /v1/jobs/{id}/result for
// multi-unit jobs: every unit with the artifact URL its result is
// served from.
type resultEnvelope struct {
	ID    string       `json:"id"`
	Units []resultUnit `json:"units"`
}

type resultUnit struct {
	Unit
	ArtifactURL string `json:"artifact_url"`
}

func (j *Job) resultEnvelope() resultEnvelope {
	env := resultEnvelope{ID: j.ID}
	for _, u := range j.Units {
		env.Units = append(env.Units, resultUnit{Unit: u, ArtifactURL: "/v1/artifacts/" + u.Key})
	}
	return env
}

// unitLabel names a unit the way the runner labels its jobs.
func unitLabel(tech sim.Technique, wl []string) string {
	return fmt.Sprintf("%s/%s", tech, strings.Join(wl, "+"))
}

// Event is one entry of a job's SSE stream: a job state transition
// (State set), a runner task lifecycle event (Task set), or — in
// cluster mode — a cluster journal event (Cluster set). Every event
// carries the job's trace ID so stream consumers can correlate with
// logs and span exports, and Node names the node the event concerns
// (the serving node for local tasks, the executing worker for cluster
// ones).
type Event struct {
	Seq      int    `json:"seq"`
	Event    string `json:"-"`
	TraceID  string `json:"trace_id,omitempty"`
	State    string `json:"state,omitempty"`
	Task     string `json:"task,omitempty"`
	Cluster  string `json:"cluster,omitempty"`
	Node     string `json:"node,omitempty"`
	Label    string `json:"label,omitempty"`
	Key      string `json:"key,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Finished int    `json:"finished,omitempty"`
	Total    int    `json:"total,omitempty"`
	Error    string `json:"error,omitempty"`
}

// eventLog is an append-only event sequence with replay: subscribers
// read by index and wait on a broadcast channel for more, so no
// subscriber can miss or be flooded by events regardless of its
// consumption rate.
type eventLog struct {
	traceID string // stamped onto every published event
	node    string // default Node for events that don't set their own

	mu     sync.Mutex
	events []Event
	wake   chan struct{}
	closed bool
}

func newEventLog(traceID, node string) *eventLog {
	return &eventLog{traceID: traceID, node: node, wake: make(chan struct{})}
}

// publish appends an event and wakes every waiter.
func (l *eventLog) publish(kind string, ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev.Seq = len(l.events)
	ev.Event = kind
	ev.TraceID = l.traceID
	if ev.Node == "" {
		ev.Node = l.node
	}
	l.events = append(l.events, ev)
	close(l.wake)
	l.wake = make(chan struct{})
}

// close marks the log complete and wakes every waiter.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// since returns the events from index from onward, a channel that
// closes when the log changes, and whether the log is complete.
func (l *eventLog) since(from int) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if from < len(l.events) {
		out = append(out, l.events[from:]...)
	}
	return out, l.wake, l.closed
}

func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// bytesReader adapts a byte slice for json.Decoder.
func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
