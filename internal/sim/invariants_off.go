//go:build !verify

package sim

// invariantsEnabled gates the simulator's runtime self-checks. In
// default builds it is a false constant, so every check site compiles
// to nothing and the hot path is untouched (asserted by the benchmark
// suite). Build with `-tags verify` to compile the checks in.
const invariantsEnabled = false

// invariantState is empty in default builds.
type invariantState struct{}

func (s *Simulator) checkStepInvariants()                    {}
func (s *Simulator) checkBoundaryInvariants(frontier uint64) {}
