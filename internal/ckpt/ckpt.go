// Package ckpt provides the low-level binary encoding used by
// simulator checkpoints. The format is deliberately boring: a flat
// little-endian byte stream with explicit section tags, so that two
// runs that reach the same simulator state always serialise to the
// same bytes (the content-addressed store relies on this), and a
// truncated or corrupted stream fails loudly instead of restoring
// garbage.
//
// Writer appends primitives to a growing buffer; Reader consumes them
// with a sticky error, so call sites can decode a whole section and
// check Err once at the end. Floats travel as IEEE-754 bit patterns
// (math.Float64bits), never as text, so round-tripping is exact.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer serialises primitives into a deterministic byte stream.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer with some preallocated capacity.
func NewWriter() *Writer {
	return &Writer{buf: make([]byte, 0, 4096)}
}

// Bytes returns the accumulated encoding. The slice aliases the
// writer's internal buffer; do not keep writing after using it.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Section writes a four-byte ASCII tag marking the start of a logical
// section. Tags let the reader detect misaligned decodes immediately
// instead of silently reinterpreting unrelated bytes.
func (w *Writer) Section(tag string) {
	if len(tag) != 4 {
		panic("ckpt: section tag must be exactly 4 bytes")
	}
	w.buf = append(w.buf, tag...)
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U8 writes a single byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// I64 writes a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes64 writes a length-prefixed byte slice.
func (w *Writer) Bytes64(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// U64Slice writes a length-prefixed []uint64.
func (w *Writer) U64Slice(s []uint64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.U64(v)
	}
}

// U8Slice writes a length-prefixed []uint8.
func (w *Writer) U8Slice(s []uint8) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// I32Slice writes a length-prefixed []int32.
func (w *Writer) I32Slice(s []int32) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.U32(uint32(v))
	}
}

// I8Slice writes a length-prefixed []int8.
func (w *Writer) I8Slice(s []int8) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.buf = append(w.buf, uint8(v))
	}
}

// IntSlice writes a length-prefixed []int (as int64s).
func (w *Writer) IntSlice(s []int) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.I64(int64(v))
	}
}

// F64Slice writes a length-prefixed []float64 (as bit patterns).
func (w *Writer) F64Slice(s []float64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.F64(v)
	}
}

// BoolSlice writes a length-prefixed []bool (one byte per element).
func (w *Writer) BoolSlice(s []bool) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.Bool(v)
	}
}

// Reader decodes a stream produced by Writer. Decoding errors stick:
// after the first failure every subsequent read returns a zero value,
// so callers can decode a batch of fields and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Failf records an external validation error (for callers that decode
// a value and then reject it). The first error wins.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Done returns an error unless the stream decoded cleanly and was
// fully consumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("ckpt: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.Failf("ckpt: truncated stream at offset %d (want %d bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Section consumes and validates a four-byte section tag.
func (r *Reader) Section(tag string) {
	if len(tag) != 4 {
		panic("ckpt: section tag must be exactly 4 bytes")
	}
	b := r.take(4)
	if b == nil {
		return
	}
	if string(b) != tag {
		r.Failf("ckpt: expected section %q at offset %d, found %q", tag, r.off-4, string(b))
	}
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U8 reads a single byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool, rejecting any byte other than 0 or 1.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.Failf("ckpt: invalid bool byte %d at offset %d", v, r.off-1)
		return false
	}
	return v == 1
}

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// sliceLen decodes a length prefix and bounds it by the remaining
// bytes (width bytes per element), so corrupt input cannot force a
// huge allocation.
func (r *Reader) sliceLen(width int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/width) {
		r.Failf("ckpt: slice length %d exceeds remaining stream at offset %d", n, r.off-8)
		return 0
	}
	return int(n)
}

// Bytes64 reads a length-prefixed byte slice (copied out of the
// stream).
func (r *Reader) Bytes64() []byte {
	n := r.sliceLen(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1)
	b := r.take(n)
	return string(b)
}

// U64Slice reads a length-prefixed []uint64.
func (r *Reader) U64Slice() []uint64 {
	n := r.sliceLen(8)
	if r.err != nil {
		return nil
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = r.U64()
	}
	return s
}

// U64SliceInto decodes into dst and fails unless the encoded length
// matches len(dst) exactly. Restore paths use it to enforce that a
// checkpoint matches the geometry of the object it restores into.
func (r *Reader) U64SliceInto(dst []uint64) {
	n := r.sliceLen(8)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("ckpt: slice length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// U8Slice reads a length-prefixed []uint8.
func (r *Reader) U8Slice() []uint8 {
	n := r.sliceLen(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]uint8, n)
	copy(out, b)
	return out
}

// U8SliceInto decodes into dst, enforcing an exact length match.
func (r *Reader) U8SliceInto(dst []uint8) {
	n := r.sliceLen(1)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("ckpt: slice length %d, want %d", n, len(dst))
		return
	}
	copy(dst, r.take(n))
}

// I32Slice reads a length-prefixed []int32.
func (r *Reader) I32Slice() []int32 {
	n := r.sliceLen(4)
	if r.err != nil {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(r.U32())
	}
	return s
}

// I32SliceInto decodes into dst, enforcing an exact length match.
func (r *Reader) I32SliceInto(dst []int32) {
	n := r.sliceLen(4)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("ckpt: slice length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = int32(r.U32())
	}
}

// I8SliceInto decodes into dst, enforcing an exact length match.
func (r *Reader) I8SliceInto(dst []int8) {
	n := r.sliceLen(1)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("ckpt: slice length %d, want %d", n, len(dst))
		return
	}
	b := r.take(n)
	for i := range dst {
		dst[i] = int8(b[i])
	}
}

// IntSliceInto decodes into dst, enforcing an exact length match.
func (r *Reader) IntSliceInto(dst []int) {
	n := r.sliceLen(8)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("ckpt: slice length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = int(r.I64())
	}
}

// F64SliceInto decodes into dst, enforcing an exact length match.
func (r *Reader) F64SliceInto(dst []float64) {
	n := r.sliceLen(8)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("ckpt: slice length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.F64()
	}
}

// F64Slice reads a length-prefixed []float64.
func (r *Reader) F64Slice() []float64 {
	n := r.sliceLen(8)
	if r.err != nil {
		return nil
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = r.F64()
	}
	return s
}

// IntSlice reads a length-prefixed []int.
func (r *Reader) IntSlice() []int {
	n := r.sliceLen(8)
	if r.err != nil {
		return nil
	}
	s := make([]int, n)
	for i := range s {
		s[i] = int(r.I64())
	}
	return s
}

// BoolSliceInto decodes into dst, enforcing an exact length match.
func (r *Reader) BoolSliceInto(dst []bool) {
	n := r.sliceLen(1)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("ckpt: slice length %d, want %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.Bool()
	}
}
